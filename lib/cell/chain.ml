module Tech = Slc_device.Tech
module Process = Slc_device.Process
open Slc_spice

type stage = { cell : Cells.t; pin : string; wire_cap : float }

let stage ?(wire_cap = 0.0) cell pin = { cell; pin; wire_cap }

type t = { tech : Tech.t; stages : stage list; final_load : float }

let make ?(final_load = 2e-15) tech stages =
  if stages = [] then Slc_obs.Slc_error.invalid_input ~site:"Chain.make" "empty chain";
  List.iter
    (fun s ->
      if not (List.mem s.pin s.cell.Cells.inputs) then
        Slc_obs.Slc_error.invalid_input ~site:"Chain.make"
          (Printf.sprintf "cell %s has no pin %s" s.cell.Cells.name s.pin);
      if s.wire_cap < 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Chain.make" "negative wire cap")
    stages;
  { tech; stages; final_load }

(* All built-in cells invert, so the edge direction alternates. *)
let arcs_of t ~in_rises =
  let _, arcs =
    List.fold_left
      (fun (rises, acc) s ->
        let out_dir = if rises then Arc.Fall else Arc.Rise in
        let arc = Arc.find s.cell ~pin:s.pin ~out_dir in
        (not rises, arc :: acc))
      (in_rises, []) t.stages
  in
  List.rev arcs

type result = {
  total_delay : float;
  stage_delays : float array;
  stage_slews : float array;
  out_slew : float;
}

module Slc_error = Slc_obs.Slc_error
module Telemetry = Slc_obs.Telemetry

let ramp_start = 1e-12

let simulate ?(seed = Process.nominal) t ~sin ~vdd ~in_rises =
  if sin <= 0.0 || vdd <= 0.0 then
    Slc_obs.Slc_error.invalid_input ~site:"Chain.simulate" "invalid stimulus";
  let arcs = arcs_of t ~in_rises in
  let net = Netlist.create () in
  let nvdd = Netlist.fresh_node net "vdd" in
  let nin = Netlist.fresh_node net "in" in
  Netlist.add_vsource net (Stimulus.dc vdd) nvdd;
  let v_from = if in_rises then 0.0 else vdd in
  let v_to = if in_rises then vdd else 0.0 in
  Netlist.add_vsource net
    (Stimulus.ramp ~t0:ramp_start ~duration:sin ~v_from ~v_to)
    nin;
  (* Instantiate the stages front to back; each output node feeds the
     next stage's switching pin. *)
  let outs =
    List.mapi
      (fun i _ -> Netlist.fresh_node net (Printf.sprintf "out%d" i))
      t.stages
  in
  let drive = nin :: outs in
  List.iteri
    (fun i ((s : stage), (arc : Arc.t)) ->
      let in_node = List.nth drive i in
      let out_node = List.nth outs i in
      let side_node pin =
        if List.assoc pin arc.Arc.side_values then nvdd else Netlist.ground
      in
      let gate_node pin =
        if String.equal pin s.pin then in_node else side_node pin
      in
      Harness.instantiate ~seed t.tech net s.cell ~gate_node ~out:out_node
        ~vdd_node:nvdd;
      Netlist.add_capacitor net s.wire_cap ~a:out_node ~b:Netlist.ground)
    (List.combine t.stages arcs);
  let last_out = List.nth outs (List.length outs - 1) in
  Netlist.add_capacitor net t.final_load ~a:last_out ~b:Netlist.ground;
  (* Window estimate: sum of single-stage C*V/Ieff scales with a
     few-fF representative load, padded by the retry loop below. *)
  let tau_total =
    List.fold_left
      (fun acc (arc : Arc.t) ->
        let eq = Equivalent.of_arc_cached t.tech arc in
        let ieff = Equivalent.ieff eq ~vdd in
        acc +. (3e-15 *. vdd /. Float.max 1e-12 ieff))
      0.0 arcs
  in
  let n_stages = List.length t.stages in
  let rec attempt retries window =
    if retries > 3 then begin
      Telemetry.incr Telemetry.sim_failures;
      raise
        (Slc_error.Simulation_failed
           {
             Slc_error.sf_detail =
               Printf.sprintf
                 "%d-stage chain: edges not captured within the retry budget"
                 n_stages;
             sf_retries = retries - 1;
             sf_window = window /. 3.0;
             sf_cause = None;
             sf_context =
               {
                 Slc_error.no_context with
                 tech = Some t.tech.Tech.name;
                 seed =
                   (if seed == Process.nominal then None
                    else Some seed.Process.index);
               };
           })
    end;
    if retries > 0 then Telemetry.incr Telemetry.sim_retries;
    let tstop = ramp_start +. sin +. window in
    (* The default step cap (tstop/100) is far coarser than a single
       stage transition once several stages share the window; cap the
       step so every transition is resolved by many points. *)
    let opts =
      {
        (Transient.default_options ~tstop) with
        dt_max = tstop /. Float.max 600.0 (150.0 *. float_of_int n_stages);
        breakpoints = Stimulus.breakpoints ~t0:ramp_start ~duration:sin;
      }
    in
    Harness.count_simulation ();
    let res = Transient.run opts net in
    let win = Transient.waveform res nin in
    let wouts = List.map (Transient.waveform res) outs in
    (* Expected final value of each stage output. *)
    let dirs =
      List.map
        (fun (arc : Arc.t) ->
          match arc.Arc.out_dir with
          | Arc.Fall -> Waveform.Falling
          | Arc.Rise -> Waveform.Rising)
        arcs
    in
    let half = 0.5 *. vdd in
    let crossings =
      List.map2
        (fun w dir -> Waveform.cross_time w dir half)
        wouts dirs
    in
    let in_cross =
      match Waveform.cross_time win Waveform.Rising half with
      | Some tc -> Some tc
      | None -> Waveform.cross_time win Waveform.Falling half
    in
    let slews =
      List.map2 (fun w dir -> Waveform.measure_slew w ~vdd dir) wouts dirs
    in
    let settled =
      List.for_all2
        (fun w dir ->
          let target =
            match dir with Waveform.Falling -> 0.0 | Waveform.Rising -> vdd
          in
          Waveform.settled w ~vdd ~target ~tol_frac:0.02)
        wouts dirs
    in
    let all_some l = List.for_all Option.is_some l in
    if (not settled) || (not (all_some crossings)) || (not (all_some slews))
       || in_cross = None
    then attempt (retries + 1) (window *. 3.0)
    else begin
      let cross_times = List.map Option.get crossings in
      let t_in = Option.get in_cross in
      let stage_delays =
        Array.of_list
          (List.mapi
             (fun i tc ->
               let prev = if i = 0 then t_in else List.nth cross_times (i - 1) in
               tc -. prev)
             cross_times)
      in
      let stage_slews = Array.of_list (List.map Option.get slews) in
      {
        total_delay = List.nth cross_times (n_stages - 1) -. t_in;
        stage_delays;
        stage_slews;
        out_slew = stage_slews.(n_stages - 1);
      }
    end
  in
  attempt 0 (Float.max (5.0 *. tau_total) (Float.max (3.0 *. sin) 4e-11))
