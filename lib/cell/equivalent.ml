module Mosfet = Slc_device.Mosfet
module Tech = Slc_device.Tech
module Process = Slc_device.Process

type t = { device : Mosfet.params; width_mult : float }

let rec series_depth = function
  | Topology.Dev _ -> 0
  | Topology.Series l ->
    List.length l - 1
    + List.fold_left (fun acc n -> max acc (series_depth n)) 0 l
  | Topology.Parallel l ->
    List.fold_left (fun acc n -> max acc (series_depth n)) 0 l

let of_arc ?(stack_factor = 0.95) (tech : Tech.t) (arc : Arc.t) =
  let cell = arc.Arc.cell in
  let falling = match arc.Arc.out_dir with Arc.Fall -> true | Arc.Rise -> false in
  (* Conduction state at the *end* of the transition: switching input
     high for a falling output, low for a rising one. *)
  let on_input = Arc.input_on arc ~switching_high:falling in
  let network, template, base_mult =
    if falling then (cell.Cells.pull_down, tech.Tech.nmos, cell.Cells.wn_mult)
    else (cell.Cells.pull_up, tech.Tech.pmos, cell.Cells.wp_mult)
  in
  (* A PMOS device conducts when its gate input is low. *)
  let on pin = if falling then on_input pin else not (on_input pin) in
  let w_eq = Topology.equivalent_width_mult network ~on in
  if w_eq <= 0.0 then
    Slc_obs.Slc_error.invalid_input ~site:"Equivalent.of_arc" "arc network does not conduct";
  let derate = stack_factor ** float_of_int (series_depth network) in
  let width_mult = w_eq *. base_mult *. derate in
  { device = Mosfet.scale_width template width_mult; width_mult }

(* of_arc is deterministic in (tech, arc) and called on every window
   sizing, so memoize the default-stack-factor case.  Keys are compared
   structurally (both types are plain data); the table is guarded by a
   mutex because simulations run concurrently under Slc_num.Parallel. *)
let[@slc.domain_safe "guarded by memo_lock"] memo :
    (Tech.t * Arc.t, t) Hashtbl.t =
  Hashtbl.create 32

let memo_lock = Mutex.create ()

let of_arc_cached (tech : Tech.t) (arc : Arc.t) =
  let key = (tech, arc) in
  Mutex.lock memo_lock;
  match Hashtbl.find_opt memo key with
  | Some eq ->
    Mutex.unlock memo_lock;
    eq
  | None ->
    (* Compute while holding the lock: of_arc is cheap (pure topology
       walk) and this keeps the table race-free without double work. *)
    let result =
      match of_arc tech arc with
      | eq ->
        Hashtbl.replace memo key eq;
        Ok eq
      | exception e -> Error e
    in
    Mutex.unlock memo_lock;
    (match result with Ok eq -> eq | Error e -> raise e)

let ieff t ~vdd = Mosfet.ieff t.device ~vdd

let ieff_with_seed tech seed arc ~vdd =
  let eq = of_arc tech arc in
  (* Only global shifts: the equivalent device is an abstraction, not a
     physical instance, so local mismatch stays in the extraction
     residual. *)
  let global_only = { seed with Slc_device.Process.local_seed = 0; index = -1 } in
  let dev = Process.apply global_only tech ~device_index:0 eq.device in
  Mosfet.ieff dev ~vdd

let input_cap (tech : Tech.t) (cell : Cells.t) ~pin =
  let rec width_of template = function
    | Topology.Dev { pin = p; width_mult } ->
      if String.equal p pin then width_mult else 0.0
    | Topology.Series l | Topology.Parallel l ->
      List.fold_left (fun acc n -> acc +. width_of template n) 0.0 l
  in
  let wn = width_of tech.Tech.nmos cell.Cells.pull_down *. cell.Cells.wn_mult in
  let wp = width_of tech.Tech.pmos cell.Cells.pull_up *. cell.Cells.wp_mult in
  (wn *. Mosfet.cgate tech.Tech.nmos) +. (wp *. Mosfet.cgate tech.Tech.pmos)

(* Pin-capacitance memo: SSTA graph building asks for the same
   (tech, cell, pin) capacitance once per fanout pin of every gate, so
   a 100k-gate netlist over a dozen cell kinds would otherwise re-walk
   the same pull-up/pull-down topologies ~200k times.  Keys are the
   technology and cell names (both unique per definition); values are
   the pure [input_cap] result, so caching never changes bits. *)
let[@slc.domain_safe "guarded by input_cap_lock"] input_cap_memo :
    (string * string * string, float) Hashtbl.t =
  Hashtbl.create 64

let input_cap_lock = Mutex.create ()

let input_cap_cached (tech : Tech.t) (cell : Cells.t) ~pin =
  let key = (tech.Tech.name, cell.Cells.name, pin) in
  Mutex.lock input_cap_lock;
  match Hashtbl.find_opt input_cap_memo key with
  | Some c ->
    Mutex.unlock input_cap_lock;
    c
  | None ->
    (* Compute under the lock: a pure, cheap topology walk. *)
    let c = input_cap tech cell ~pin in
    Hashtbl.replace input_cap_memo key c;
    Mutex.unlock input_cap_lock;
    c

let parasitic_cap (tech : Tech.t) (arc : Arc.t) =
  let cell = arc.Arc.cell in
  (* Devices whose drain touches the output: the top level of both
     networks.  Approximate with the full network width. *)
  let all_on _ = true in
  let wn =
    Topology.equivalent_width_mult cell.Cells.pull_down ~on:all_on
    *. cell.Cells.wn_mult
  in
  let wp =
    Topology.equivalent_width_mult cell.Cells.pull_up ~on:all_on
    *. cell.Cells.wp_mult
  in
  (wn *. Mosfet.cjunction tech.Tech.nmos)
  +. (wp *. Mosfet.cjunction tech.Tech.pmos)
