type t = {
  arc_name : string;
  sin_axis : float array;
  cload_axis : float array;
  vdd_axis : float array;
  td : float array array array;
  sout : float array array array;
  energy : float array array array;
}

let size t =
  Array.length t.sin_axis * Array.length t.cload_axis * Array.length t.vdd_axis

let design_levels ~budget ~box =
  if Array.length box <> 3 then Slc_obs.Slc_error.invalid_input ~site:"Nldm.design_levels" "need 3-D box";
  if budget < 1 then Slc_obs.Slc_error.invalid_input ~site:"Nldm.design_levels" "budget must be >= 1";
  (* Enumerate (n_sin, n_cload, n_vdd); maximize the grid size, then
     prefer sin/cload resolution and balance. *)
  let best = ref [| 1; 1; 1 |] in
  let best_key = ref (-1, 0.0) in
  for a = 1 to budget do
    for b = 1 to budget / a do
      let c = budget / (a * b) in
      if c >= 1 then begin
        let product = a * b * c in
        let fa = float_of_int a and fb = float_of_int b and fc = float_of_int c in
        (* Penalty: imbalance between sin and cload, plus vdd finer than
           the others. *)
        let penalty =
          ((fa -. fb) ** 2.0) +. (0.5 *. ((fc -. (0.5 *. (fa +. fb))) ** 2.0))
          +. if c > min a b then 10.0 else 0.0
        in
        let key = (product, -.penalty) in
        if key > !best_key then begin
          best_key := key;
          best := [| a; b; c |]
        end
      end
    done
  done;
  !best

let axis_of_level (lo, hi) n =
  if n < 1 then Slc_obs.Slc_error.invalid_input ~site:"Nldm.axes_of_levels" "level < 1";
  if n = 1 then [| 0.5 *. (lo +. hi) |]
  else Slc_num.Vec.linspace lo hi n

let axes_of_levels ~box levels =
  if Array.length box <> 3 || Array.length levels <> 3 then
    Slc_obs.Slc_error.invalid_input ~site:"Nldm.axes_of_levels" "need 3-D box and levels";
  Array.init 3 (fun d -> axis_of_level box.(d) levels.(d))

let build_on_axes ?seed tech arc ~axes =
  if Array.length axes <> 3 then Slc_obs.Slc_error.invalid_input ~site:"Nldm.build_on_axes" "need 3 axes";
  (* Per-simulation failures get their (seed, ξ-point) context from
     [Harness.simulate]; this annotates anything else escaping the grid
     build with the arc/tech being tabulated. *)
  Slc_obs.Slc_error.with_context
    {
      Slc_obs.Slc_error.arc = Some (Arc.name arc);
      tech = Some tech.Slc_device.Tech.name;
      seed =
        (match seed with
        | Some s when not (s == Slc_device.Process.nominal) ->
          Some s.Slc_device.Process.index
        | Some _ | None -> None);
      point = None;
    }
  @@ fun () ->
  let sin_axis = axes.(0) and cload_axis = axes.(1) and vdd_axis = axes.(2) in
  let measure s c v =
    Harness.simulate ?seed tech arc { Harness.sin = s; cload = c; vdd = v }
  in
  let n_s = Array.length sin_axis
  and n_c = Array.length cload_axis
  and n_v = Array.length vdd_axis in
  let td = Array.init n_s (fun _ -> Array.init n_c (fun _ -> Array.make n_v 0.0)) in
  let sout = Array.init n_s (fun _ -> Array.init n_c (fun _ -> Array.make n_v 0.0)) in
  let energy =
    Array.init n_s (fun _ -> Array.init n_c (fun _ -> Array.make n_v 0.0))
  in
  for i = 0 to n_s - 1 do
    for j = 0 to n_c - 1 do
      for k = 0 to n_v - 1 do
        let m = measure sin_axis.(i) cload_axis.(j) vdd_axis.(k) in
        td.(i).(j).(k) <- m.Harness.td;
        sout.(i).(j).(k) <- m.Harness.sout;
        energy.(i).(j).(k) <- m.Harness.energy
      done
    done
  done;
  { arc_name = Arc.name arc; sin_axis; cload_axis; vdd_axis; td; sout; energy }

let build ?seed tech arc ~levels =
  let box = Slc_device.Tech.input_box tech in
  build_on_axes ?seed tech arc ~axes:(axes_of_levels ~box levels)

(* Interpolation over up to three axes, constant along singletons. *)
let cell_of axis x =
  let n = Array.length axis in
  if n = 1 then (0, 0.0)
  else begin
    let i = Slc_num.Interp.locate axis x in
    (i, (x -. axis.(i)) /. (axis.(i + 1) -. axis.(i)))
  end

let lookup values t (p : Harness.point) =
  let i, tx = cell_of t.sin_axis p.Harness.sin in
  let j, ty = cell_of t.cload_axis p.Harness.cload in
  let k, tz = cell_of t.vdd_axis p.Harness.vdd in
  let at a b c =
    let a = min a (Array.length t.sin_axis - 1) in
    let b = min b (Array.length t.cload_axis - 1) in
    let c = min c (Array.length t.vdd_axis - 1) in
    values.(a).(b).(c)
  in
  let lerp w a b = ((1.0 -. w) *. a) +. (w *. b) in
  let c00 = lerp tx (at i j k) (at (i + 1) j k) in
  let c10 = lerp tx (at i (j + 1) k) (at (i + 1) (j + 1) k) in
  let c01 = lerp tx (at i j (k + 1)) (at (i + 1) j (k + 1)) in
  let c11 = lerp tx (at i (j + 1) (k + 1)) (at (i + 1) (j + 1) (k + 1)) in
  lerp tz (lerp ty c00 c10) (lerp ty c01 c11)

let lookup_td t p = lookup t.td t p

let lookup_sout t p = lookup t.sout t p

let lookup_energy t p = lookup t.energy t p

(* ------------------------------------------------------------------ *)
(* Serialization.  Line-oriented text with hex floats (Hexfloat), so a
   stored table reloads with bitwise-identical axes and values — the
   persistent store's correctness contract. *)

exception Format_error of string

let fail msg = raise (Format_error ("Nldm: " ^ msg))

let hex = Slc_num.Hexfloat.to_string

let to_buffer b t =
  let axis name a =
    Buffer.add_string b
      (Printf.sprintf "axis %s %d %s\n" name (Array.length a)
         (String.concat " " (Array.to_list (Array.map hex a))))
  in
  let grid name (values : float array array array) =
    let flat = ref [] in
    for i = Array.length t.sin_axis - 1 downto 0 do
      for j = Array.length t.cload_axis - 1 downto 0 do
        for k = Array.length t.vdd_axis - 1 downto 0 do
          flat := hex values.(i).(j).(k) :: !flat
        done
      done
    done;
    Buffer.add_string b
      (Printf.sprintf "%s %s\n" name (String.concat " " !flat))
  in
  Buffer.add_string b "slc-nldm 1\n";
  Buffer.add_string b (Printf.sprintf "arc %s\n" t.arc_name);
  axis "sin" t.sin_axis;
  axis "cload" t.cload_axis;
  axis "vdd" t.vdd_axis;
  grid "td" t.td;
  grid "sout" t.sout;
  grid "energy" t.energy;
  Buffer.add_string b "end\n"

let to_string t =
  let b = Buffer.create 1024 in
  to_buffer b t;
  Buffer.contents b

let fields l = String.split_on_char ' ' l |> List.filter (fun s -> s <> "")

let float_of s =
  match Slc_num.Hexfloat.of_string_opt s with
  | Some f -> f
  | None -> fail ("bad float " ^ s)

(* Parse one table from a line cursor; shared with [Library.of_string],
   which embeds table blocks inline. *)
let parse_lines next_line =
  let expect key =
    let l = next_line () in
    match fields l with
    | k :: rest when String.equal k key -> rest
    | _ -> fail (Printf.sprintf "expected %S, got %S" key l)
  in
  (match expect "slc-nldm" with
  | [ "1" ] -> ()
  | _ -> fail "unsupported format version (want 1)");
  let arc_name =
    match expect "arc" with [ a ] -> a | _ -> fail "bad arc line"
  in
  let axis name =
    match expect "axis" with
    | n :: rest when n = name -> (
      match rest with
      | count :: vals ->
        let count =
          match int_of_string_opt count with
          | Some c when c >= 1 -> c
          | _ -> fail ("bad axis count for " ^ name)
        in
        let a = Array.of_list (List.map float_of vals) in
        if Array.length a <> count then fail ("axis length mismatch for " ^ name);
        a
      | [] -> fail ("empty axis " ^ name))
    | _ -> fail ("expected axis " ^ name)
  in
  let sin_axis = axis "sin" in
  let cload_axis = axis "cload" in
  let vdd_axis = axis "vdd" in
  let n_s = Array.length sin_axis
  and n_c = Array.length cload_axis
  and n_v = Array.length vdd_axis in
  let grid name =
    let vals = Array.of_list (List.map float_of (expect name)) in
    if Array.length vals <> n_s * n_c * n_v then
      fail (name ^ " grid size mismatch");
    Array.init n_s (fun i ->
        Array.init n_c (fun j ->
            Array.init n_v (fun k -> vals.((((i * n_c) + j) * n_v) + k))))
  in
  let td = grid "td" in
  let sout = grid "sout" in
  let energy = grid "energy" in
  (match fields (next_line ()) with
  | [ "end" ] -> ()
  | _ -> fail "missing end marker");
  { arc_name; sin_axis; cload_axis; vdd_axis; td; sout; energy }

let of_string src =
  let lines =
    ref
      (String.split_on_char '\n' src
      |> List.map String.trim
      |> List.filter (fun l -> l <> ""))
  in
  let next_line () =
    match !lines with
    | [] -> fail "unexpected end of input"
    | l :: rest ->
      lines := rest;
      l
  in
  let t = parse_lines next_line in
  if !lines <> [] then fail "trailing garbage after end marker";
  t
