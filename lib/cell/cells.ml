open Topology

type t = {
  name : string;
  inputs : string list;
  wn_mult : float;
  wp_mult : float;
  pull_down : Topology.t;
  pull_up : Topology.t;
}

let dev ?(w = 1.0) pin = Dev { pin; width_mult = w }

let inv =
  {
    name = "INV";
    inputs = [ "A" ];
    wn_mult = 1.0;
    wp_mult = 2.0;
    pull_down = dev "A";
    pull_up = dev "A";
  }

let nand2 =
  {
    name = "NAND2";
    inputs = [ "A"; "B" ];
    wn_mult = 2.0;
    wp_mult = 2.0;
    pull_down = Series [ dev "A"; dev "B" ];
    pull_up = Parallel [ dev "A"; dev "B" ];
  }

let nand3 =
  {
    name = "NAND3";
    inputs = [ "A"; "B"; "C" ];
    wn_mult = 3.0;
    wp_mult = 2.0;
    pull_down = Series [ dev "A"; dev "B"; dev "C" ];
    pull_up = Parallel [ dev "A"; dev "B"; dev "C" ];
  }

let nand4 =
  {
    name = "NAND4";
    inputs = [ "A"; "B"; "C"; "D" ];
    wn_mult = 4.0;
    wp_mult = 2.0;
    pull_down = Series [ dev "A"; dev "B"; dev "C"; dev "D" ];
    pull_up = Parallel [ dev "A"; dev "B"; dev "C"; dev "D" ];
  }

let nor2 =
  {
    name = "NOR2";
    inputs = [ "A"; "B" ];
    wn_mult = 1.0;
    wp_mult = 4.0;
    pull_down = Parallel [ dev "A"; dev "B" ];
    pull_up = Series [ dev "A"; dev "B" ];
  }

let nor3 =
  {
    name = "NOR3";
    inputs = [ "A"; "B"; "C" ];
    wn_mult = 1.0;
    wp_mult = 6.0;
    pull_down = Parallel [ dev "A"; dev "B"; dev "C" ];
    pull_up = Series [ dev "A"; dev "B"; dev "C" ];
  }

let nor4 =
  {
    name = "NOR4";
    inputs = [ "A"; "B"; "C"; "D" ];
    wn_mult = 1.0;
    wp_mult = 8.0;
    pull_down = Parallel [ dev "A"; dev "B"; dev "C"; dev "D" ];
    pull_up = Series [ dev "A"; dev "B"; dev "C"; dev "D" ];
  }

let aoi21 =
  {
    name = "AOI21";
    inputs = [ "A"; "B"; "C" ];
    wn_mult = 2.0;
    wp_mult = 4.0;
    (* out = not (A.B + C) *)
    pull_down = Parallel [ Series [ dev "A"; dev "B" ]; dev ~w:0.5 "C" ];
    pull_up = Series [ Parallel [ dev "A"; dev "B" ]; dev "C" ];
  }

let oai21 =
  {
    name = "OAI21";
    inputs = [ "A"; "B"; "C" ];
    wn_mult = 2.0;
    wp_mult = 4.0;
    (* out = not ((A + B).C) *)
    pull_down = Series [ Parallel [ dev "A"; dev "B" ]; dev "C" ];
    pull_up = Parallel [ Series [ dev "A"; dev "B" ]; dev ~w:0.5 "C" ];
  }

let aoi22 =
  {
    name = "AOI22";
    inputs = [ "A"; "B"; "C"; "D" ];
    wn_mult = 2.0;
    wp_mult = 4.0;
    (* out = not (A.B + C.D) *)
    pull_down =
      Parallel [ Series [ dev "A"; dev "B" ]; Series [ dev "C"; dev "D" ] ];
    pull_up =
      Series [ Parallel [ dev "A"; dev "B" ]; Parallel [ dev "C"; dev "D" ] ];
  }

let oai22 =
  {
    name = "OAI22";
    inputs = [ "A"; "B"; "C"; "D" ];
    wn_mult = 2.0;
    wp_mult = 4.0;
    (* out = not ((A + B).(C + D)) *)
    pull_down =
      Series [ Parallel [ dev "A"; dev "B" ]; Parallel [ dev "C"; dev "D" ] ];
    pull_up =
      Parallel [ Series [ dev "A"; dev "B" ]; Series [ dev "C"; dev "D" ] ];
  }

let all =
  [ inv; nand2; nand3; nand4; nor2; nor3; nor4; aoi21; oai21; aoi22; oai22 ]

let by_name name =
  match List.find_opt (fun c -> String.equal c.name name) all with
  | Some c -> c
  | None -> raise Not_found

let paper_set = [ inv; nand2; nor2 ]

let logic_value cell ~on =
  (* PMOS devices conduct when their input is low. *)
  let pd = Topology.conducts cell.pull_down ~on in
  let pu = Topology.conducts cell.pull_up ~on:(fun pin -> not (on pin)) in
  match (pu, pd) with
  | true, false -> Some true
  | false, true -> Some false
  | true, true | false, false -> None

let is_complementary cell =
  let n = List.length cell.inputs in
  let ok = ref true in
  for mask = 0 to (1 lsl n) - 1 do
    let on pin =
      match List.find_index (String.equal pin) cell.inputs with
      | Some i -> mask land (1 lsl i) <> 0
      | None -> Slc_obs.Slc_error.invalid_input ~site:"Cells.is_complementary" "unknown pin"
    in
    match logic_value cell ~on with Some _ -> () | None -> ok := false
  done;
  !ok
