type direction = Rise | Fall

type t = {
  cell : Cells.t;
  pin : string;
  out_dir : direction;
  side_values : (string * bool) list;
}

let direction_to_string = function Rise -> "rise" | Fall -> "fall"

let input_rises t = match t.out_dir with Fall -> true | Rise -> false

let assignment side_values pin value p =
  if String.equal p pin then value
  else
    match List.assoc_opt p side_values with
    | Some v -> v
    | None -> Slc_obs.Slc_error.invalid_input ~site:"Arc" "unknown pin in assignment"

let find cell ~pin ~out_dir =
  if not (List.mem pin cell.Cells.inputs) then raise Not_found;
  let others = List.filter (fun p -> not (String.equal p pin)) cell.Cells.inputs in
  let n = List.length others in
  let candidates = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let side_values =
      List.mapi (fun i p -> (p, mask land (1 lsl i) <> 0)) others
    in
    let out_with v =
      Cells.logic_value cell ~on:(assignment side_values pin v)
    in
    (* All built-in cells are inverting, so a valid arc needs
       out(pin=0) = 1 and out(pin=1) = 0; the out_dir only selects the
       time direction of the input ramp, not the static condition. *)
    match (out_with false, out_with true) with
    | Some v0, Some v1 when v0 && not v1 ->
      (* Rank by number of side devices turned on along conducting
         networks: prefer worst-case stacks. *)
      let on_count =
        List.fold_left (fun acc (_, v) -> if v then acc + 1 else acc) 0 side_values
      in
      candidates := (on_count, side_values) :: !candidates
    | _ -> ()
  done;
  match List.sort (fun (a, _) (b, _) -> compare b a) !candidates with
  | (_, side_values) :: _ -> { cell; pin; out_dir; side_values }
  | [] -> raise Not_found

let all_of_cell cell =
  List.concat_map
    (fun pin ->
      List.filter_map
        (fun out_dir ->
          match find cell ~pin ~out_dir with
          | arc -> Some arc
          | exception Not_found -> None)
        [ Rise; Fall ])
    cell.Cells.inputs

let name t =
  Printf.sprintf "%s/%s/%s" t.cell.Cells.name t.pin
    (direction_to_string t.out_dir)

let input_on t ~switching_high p =
  assignment t.side_values t.pin switching_high p
