(** Multi-stage cell chains simulated at transistor level.

    A chain is a sequence of (cell, switching pin) stages: each stage's
    output drives the next stage's switching input, with optional wire
    capacitance per net and a final load.  The whole chain is flattened
    into one netlist and solved by the transient engine — the ground
    truth against which model-based SSTA path propagation (module
    [Slc_ssta]) is validated. *)

type stage = {
  cell : Cells.t;
  pin : string;      (** the input driven by the previous stage *)
  wire_cap : float;  (** extra capacitance on this stage's output, F *)
}

val stage : ?wire_cap:float -> Cells.t -> string -> stage
(** [stage cell pin] — a chain stage whose [pin] is driven by the
    previous stage; [wire_cap] defaults to 0. *)

type t = {
  tech : Slc_device.Tech.t;
  stages : stage list;
  final_load : float;
}

val make :
  ?final_load:float -> Slc_device.Tech.t -> stage list -> t
(** [final_load] defaults to 2 fF.  Raises [Invalid_argument] on an
    empty chain or an unknown pin. *)

val arcs_of : t -> in_rises:bool -> Arc.t list
(** The timing arc exercised at each stage when the chain input makes
    the given transition (all built-in cells invert, so the edge
    direction alternates down the chain). *)

type result = {
  total_delay : float;      (** chain input 50% to final output 50% *)
  stage_delays : float array;  (** per-stage 50%-to-50% delays *)
  stage_slews : float array;   (** output slew of each stage *)
  out_slew : float;
}

val simulate :
  ?seed:Slc_device.Process.seed ->
  t ->
  sin:float ->
  vdd:float ->
  in_rises:bool ->
  result
(** Builds and solves the full transistor netlist.  Counts as one
    simulator run in {!Harness.sim_count} (it is one transient
    analysis, albeit of a larger circuit).  Raises
    {!Slc_obs.Slc_error.Simulation_failed} after the retry budget. *)
