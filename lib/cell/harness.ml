module Mosfet = Slc_device.Mosfet
module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Slc_error = Slc_obs.Slc_error
module Telemetry = Slc_obs.Telemetry
open Slc_spice

type point = { sin : float; cload : float; vdd : float }

let pp_point ppf p =
  Format.fprintf ppf "(Sin=%.2fps, Cload=%.2ffF, Vdd=%.3fV)" (p.sin *. 1e12)
    (p.cload *. 1e15) p.vdd

let point_of_vec v =
  if Array.length v <> 3 then Slc_obs.Slc_error.invalid_input ~site:"Harness.point_of_vec" "need 3 coords";
  { sin = v.(0); cload = v.(1); vdd = v.(2) }

let vec_of_point p = [| p.sin; p.cload; p.vdd |]

type measurement = {
  td : float;
  sout : float;
  energy : float;
  newton_iters : int;
  time_steps : int;
  retries : int;
  degraded : bool;
  recovery : string list;
}

(* Atomic: simulations may run concurrently under Slc_num.Parallel. *)
let sims = Atomic.make 0

let sim_count () = Atomic.get sims

let reset_sim_count () = Atomic.set sims 0

let count_simulation () =
  Atomic.incr sims;
  Telemetry.incr Telemetry.simulations

(* Fractions of the total gate capacitance assigned to the gate-drain
   (Miller) and gate-source branches. *)
let cgd_frac = 0.3

let cgs_frac = 0.5

let ramp_start = 1e-12

(* Supply-current sense resistor: small enough to leave waveforms
   unchanged (IR drop ~0.1 mV at 100 uA), large enough to read the
   current from the node-voltage difference without precision loss. *)
let r_sense = 1.0

(* Where each capacitor's value comes from, in netlist insertion order:
   a fraction of device [i]'s gate cap, device [i]'s junction cap, or
   the external load.  Recorded when the template netlist is built so
   later calls can recompute values for a new seed/point without
   rebuilding the netlist. *)
type cap_source = Cap_gd of int | Cap_gs of int | Cap_j of int | Cap_load

type recorder = {
  mutable rec_bases : Mosfet.params list; (* reversed *)
  mutable rec_caps : cap_source list;     (* reversed *)
}

let instantiate_impl ?(seed = Process.nominal) ?recorder (tech : Tech.t) net
    (cell : Cells.t) ~gate_node ~out ~vdd_node =
  let cpar_scale = Process.cpar_scale seed in
  let add_device template width_mult ~g ~d ~s ~bulk =
    let base = Mosfet.scale_width template width_mult in
    let index = Netlist.device_count net in
    let dev = Process.apply seed tech ~device_index:index base in
    Netlist.add_mosfet net dev ~g ~d ~s;
    let cgate = Mosfet.cgate dev *. cpar_scale in
    let cj = Mosfet.cjunction dev *. cpar_scale in
    (match recorder with
    | Some r ->
      r.rec_bases <- base :: r.rec_bases;
      (* Mirror Netlist.add_capacitor's skip rule so the recorded slots
         stay aligned with the compiled capacitor order. *)
      let reg src c a b =
        if c > 0.0 && a <> b then r.rec_caps <- src :: r.rec_caps
      in
      reg (Cap_gd index) (cgd_frac *. cgate) g d;
      reg (Cap_gs index) (cgs_frac *. cgate) g s;
      reg (Cap_j index) cj d bulk
    | None -> ());
    Netlist.add_capacitor net (cgd_frac *. cgate) ~a:g ~b:d;
    Netlist.add_capacitor net (cgs_frac *. cgate) ~a:g ~b:s;
    Netlist.add_capacitor net cj ~a:d ~b:bulk
  in
  (* Expand a series-parallel network between the output node and a
     rail.  Series chains walk from the output towards the rail. *)
  let rec expand network template base_mult ~bulk ~top ~bottom =
    match network with
    | Topology.Dev { pin; width_mult } ->
      add_device template (width_mult *. base_mult) ~g:(gate_node pin) ~d:top
        ~s:bottom ~bulk
    | Topology.Parallel subs ->
      List.iter (fun s -> expand s template base_mult ~bulk ~top ~bottom) subs
    | Topology.Series subs ->
      let n = List.length subs in
      let rec walk i from = function
        | [] -> ()
        | [ last ] -> expand last template base_mult ~bulk ~top:from ~bottom
        | sub :: rest ->
          let mid = Netlist.fresh_node net (Printf.sprintf "int%d" i) in
          expand sub template base_mult ~bulk ~top:from ~bottom:mid;
          walk (i + 1) mid rest
      in
      if n = 0 then Slc_obs.Slc_error.invalid_input ~site:"Harness" "empty series group"
      else walk 0 top subs
  in
  Topology.validate cell.Cells.pull_down;
  Topology.validate cell.Cells.pull_up;
  expand cell.Cells.pull_down tech.Tech.nmos cell.Cells.wn_mult
    ~bulk:Netlist.ground ~top:out ~bottom:Netlist.ground;
  expand cell.Cells.pull_up tech.Tech.pmos cell.Cells.wp_mult ~bulk:vdd_node
    ~top:out ~bottom:vdd_node

let instantiate ?seed tech net cell ~gate_node ~out ~vdd_node =
  instantiate_impl ?seed tech net cell ~gate_node ~out ~vdd_node

let build_netlist_impl ?(seed = Process.nominal) ?recorder (tech : Tech.t)
    (arc : Arc.t) point =
  if point.sin <= 0.0 || point.cload < 0.0 || point.vdd <= 0.0 then
    Slc_obs.Slc_error.invalid_input ~site:"Harness.build_netlist" "invalid input condition";
  let cell = arc.Arc.cell in
  let net = Netlist.create () in
  let nvdd = Netlist.fresh_node net "vdd" in
  let nrail = Netlist.fresh_node net "vddrail" in
  let nout = Netlist.fresh_node net "out" in
  let nin = Netlist.fresh_node net "in" in
  Netlist.add_vsource net (Stimulus.dc point.vdd) nvdd;
  Netlist.add_resistor net r_sense ~a:nvdd ~b:nrail;
  let input_rises = Arc.input_rises arc in
  let v_from = if input_rises then 0.0 else point.vdd in
  let v_to = if input_rises then point.vdd else 0.0 in
  Netlist.add_vsource net
    (Stimulus.ramp ~t0:ramp_start ~duration:point.sin ~v_from ~v_to)
    nin;
  (* Side inputs tied to their static rails.  The switching pin starts
     at v_from, so side values come from the pre-transition state; they
     are constant throughout. *)
  let side_node pin =
    let v = List.assoc pin arc.Arc.side_values in
    if v then nvdd else Netlist.ground
  in
  let gate_node pin =
    if String.equal pin arc.Arc.pin then nin else side_node pin
  in
  instantiate_impl ~seed ?recorder tech net cell ~gate_node ~out:nout
    ~vdd_node:nrail;
  (match recorder with
  | Some r when point.cload > 0.0 -> r.rec_caps <- Cap_load :: r.rec_caps
  | _ -> ());
  Netlist.add_capacitor net point.cload ~a:nout ~b:Netlist.ground;
  (net, nin, nout)

let build_netlist ?seed tech arc point = build_netlist_impl ?seed tech arc point

(* Node ids assigned by build_netlist, in order. *)
let node_vdd = 1

let node_rail = 2

(* ------------------------------------------------------------------ *)
(* Compiled-template cache.

   The netlist topology of an arc testbench is a function of
   (tech, arc) only: seeds perturb device parameters and capacitance
   values, points change the load capacitance and the source stimuli,
   but never the circuit structure.  We therefore compile the netlist
   once per (tech, arc) and, per simulate call, restamp only parameter
   values via Transient.respecialize.  Simulation *results* are never
   cached — Harness.sim_count accounting is unchanged. *)

type template = {
  t_compiled : Transient.compiled;
  t_bases : Mosfet.params array; (* pre-variation params; index = device index *)
  t_caps : cap_source array;     (* aligned with compiled capacitor order *)
  t_nin : Netlist.node;
  t_nout : Netlist.node;
  t_record : int array;          (* the only nodes simulate measures *)
  t_eq : Equivalent.t;           (* equivalent inverter, for window sizing *)
  t_cpar : float;
}

(* Reference condition used only to build the template topology; every
   parameter it influences is overwritten per call.  cload must be > 0
   so the load-capacitor slot exists (a per-call value of 0 is then
   stamped as an exact zero, which is numerically identical to omitting
   the capacitor). *)
let template_point = { sin = 1e-12; cload = 1e-15; vdd = 1.0 }

let[@slc.domain_safe "guarded by templates_lock"] templates :
    (Tech.t * Arc.t, template) Hashtbl.t =
  Hashtbl.create 32

let templates_lock = Mutex.create ()

let build_template (tech : Tech.t) (arc : Arc.t) =
  let r = { rec_bases = []; rec_caps = [] } in
  let net, nin, nout =
    build_netlist_impl ~seed:Process.nominal ~recorder:r tech arc template_point
  in
  let compiled = Transient.compile net in
  {
    t_compiled = compiled;
    t_bases = Array.of_list (List.rev r.rec_bases);
    t_caps = Array.of_list (List.rev r.rec_caps);
    t_nin = nin;
    t_nout = nout;
    t_record = [| nin; nout; node_vdd; node_rail |];
    t_eq = Equivalent.of_arc_cached tech arc;
    t_cpar = Equivalent.parasitic_cap tech arc;
  }

let template tech arc =
  let key = (tech, arc) in
  Mutex.lock templates_lock;
  match Hashtbl.find_opt templates key with
  | Some t ->
    Mutex.unlock templates_lock;
    t
  | None ->
    let result =
      match build_template tech arc with
      | t ->
        Hashtbl.replace templates key t;
        Ok t
      | exception e -> Error e
    in
    Mutex.unlock templates_lock;
    (match result with Ok t -> t | Error e -> raise e)

(* Per-domain view of the template cache, plus a per-domain scratch
   workspace per (tech, arc).  Templates are immutable and built once in
   the process-wide table above; each domain then keeps its own
   reference so the hot path never takes [templates_lock].  Workspaces
   are mutable solver scratch and must not be shared across domains —
   owning one per (domain, tech, arc) lets the pool's long-lived workers
   reuse them across every simulate call instead of allocating one per
   call.  [Transient.respecialize] preserves the system dimensions, so a
   workspace sized from the template's compiled form fits every
   specialization of it. *)
let domain_caches :
    (Tech.t * Arc.t, template * Transient.workspace) Hashtbl.t
    Slc_num.Parallel.Slot.t =
  Slc_num.Parallel.Slot.make (fun () -> Hashtbl.create 8)

let domain_template tech arc =
  let tbl = Slc_num.Parallel.Slot.get domain_caches in
  let key = (tech, arc) in
  match Hashtbl.find_opt tbl key with
  | Some entry ->
    Telemetry.incr Telemetry.template_hits;
    entry
  | None ->
    Telemetry.incr Telemetry.template_misses;
    let tmpl = template tech arc in
    let entry = (tmpl, Transient.make_workspace tmpl.t_compiled) in
    Hashtbl.add tbl key entry;
    entry

(* Fresh parameter values for one (seed, point): same arithmetic, in the
   same element order, as building the netlist from scratch. *)
let specialize tmpl (tech : Tech.t) (arc : Arc.t) ~seed point =
  let cpar_scale = Process.cpar_scale seed in
  let devices =
    Array.mapi
      (fun i base -> Process.apply seed tech ~device_index:i base)
      tmpl.t_bases
  in
  let caps =
    Array.map
      (function
        | Cap_gd i -> cgd_frac *. (Mosfet.cgate devices.(i) *. cpar_scale)
        | Cap_gs i -> cgs_frac *. (Mosfet.cgate devices.(i) *. cpar_scale)
        | Cap_j i -> Mosfet.cjunction devices.(i) *. cpar_scale
        | Cap_load -> point.cload)
      tmpl.t_caps
  in
  let input_rises = Arc.input_rises arc in
  let v_from = if input_rises then 0.0 else point.vdd in
  let v_to = if input_rises then point.vdd else 0.0 in
  (* Source order matches build_netlist: the supply first, then the
     switching input. *)
  let sources =
    [|
      Stimulus.dc point.vdd;
      Stimulus.ramp ~t0:ramp_start ~duration:point.sin ~v_from ~v_to;
    |]
  in
  Transient.respecialize tmpl.t_compiled ~mosfets:devices ~caps ~sources

let supply_energy res ~vdd =
  (* E = Vdd * integral of (leakage-corrected) supply current. *)
  let w_src = Transient.waveform res node_vdd in
  let w_rail = Transient.waveform res node_rail in
  let times = w_src.Waveform.times in
  let current i =
    (w_src.Waveform.values.(i) -. w_rail.Waveform.values.(i)) /. r_sense
  in
  let i_leak = current 0 in
  let q = ref 0.0 in
  for i = 0 to Array.length times - 2 do
    let dt = times.(i + 1) -. times.(i) in
    q := !q +. (0.5 *. ((current i -. i_leak) +. (current (i + 1) -. i_leak)) *. dt)
  done;
  vdd *. !q

(* Test-only fault injection: when the predicate matches a (seed,
   point), [simulate] raises a synthetic solver failure BEFORE running
   (and before counting a simulation).  Lets the degradation and
   recovery paths be exercised deterministically without constructing a
   genuinely pathological circuit per call site. *)
let fault_injector :
    (Process.seed -> point -> bool) option Atomic.t =
  Atomic.make None

let set_fault_injector f = Atomic.set fault_injector f

let context_of ~seed tech (arc : Arc.t) point =
  {
    Slc_error.arc = Some (Arc.name arc);
    tech = Some tech.Tech.name;
    seed = (if seed == Process.nominal then None else Some seed.Process.index);
    point = Some (point.sin, point.cload, point.vdd);
  }

(* The synthetic failure raised for a (seed, point) the fault injector
   matches — identical payload from the scalar and batched flows. *)
let injected_fault ctx =
  Slc_error.No_convergence
    {
      Slc_error.phase = Slc_error.Transient_step;
      time_reached = 0.0;
      dt = 0.0;
      newton_iters = 0;
      residual = Float.nan;
      recovery = [ "injected-fault" ];
      detail = "injected fault (test hook)";
      context = ctx;
    }

(* Pieces shared verbatim by the scalar and batched measurement flows,
   so the two paths cannot drift: the initial capture window, the
   per-attempt solver options, and the waveform measurements made on a
   finished run. *)
let initial_window tmpl point =
  let tau =
    let ieff = Equivalent.ieff tmpl.t_eq ~vdd:point.vdd in
    (point.cload +. tmpl.t_cpar) *. point.vdd /. Float.max 1e-12 ieff
  in
  Float.max (8.0 *. tau) (Float.max (3.0 *. point.sin) 2.0e-11)

let attempt_options point ~window =
  let tstop = ramp_start +. point.sin +. window in
  {
    (Transient.default_options ~tstop) with
    (* Resolve the edge finely: the default tstop/100 cap leaves
       only a handful of samples across a fast transition. *)
    dt_max = tstop /. 300.0;
    breakpoints = Stimulus.breakpoints ~t0:ramp_start ~duration:point.sin;
  }

(* Measure a finished run: None when the output edge was not captured
   or has not settled (the caller retries with a longer window). *)
let measure tmpl (arc : Arc.t) point ~retries res =
  let out_dir =
    match arc.Arc.out_dir with
    | Arc.Fall -> Waveform.Falling
    | Arc.Rise -> Waveform.Rising
  in
  let target =
    match arc.Arc.out_dir with Arc.Fall -> 0.0 | Arc.Rise -> point.vdd
  in
  let win = Transient.waveform res tmpl.t_nin in
  let wout = Transient.waveform res tmpl.t_nout in
  let ok_settled = Waveform.settled wout ~vdd:point.vdd ~target ~tol_frac:0.02 in
  let td = Waveform.measure_delay ~input:win ~output:wout ~vdd:point.vdd ~out_dir in
  let sout = Waveform.measure_slew wout ~vdd:point.vdd out_dir in
  match (td, sout, ok_settled) with
  | Some td, Some sout, true ->
    Some
      {
        td;
        sout;
        energy = supply_energy res ~vdd:point.vdd;
        newton_iters = Transient.newton_iterations_total res;
        time_steps = Transient.steps_taken res;
        retries;
        degraded = Transient.degraded res;
        recovery = Transient.recovery_log res;
      }
  | _ -> None

let retry_budget_exhausted ctx ~retries ~window =
  Slc_error.Simulation_failed
    {
      Slc_error.sf_detail = "output edge not captured within the retry budget";
      sf_retries = retries - 1;
      sf_window = window /. 3.0;
      sf_cause = None;
      sf_context = ctx;
    }

let simulate ?(seed = Process.nominal) tech (arc : Arc.t) point =
  if point.sin <= 0.0 || point.cload < 0.0 || point.vdd <= 0.0 then
    Slc_obs.Slc_error.invalid_input ~site:"Harness.build_netlist" "invalid input condition";
  let ctx = context_of ~seed tech arc point in
  (match Atomic.get fault_injector with
  | Some inject when inject seed point ->
    Telemetry.incr Telemetry.sim_failures;
    raise (injected_fault ctx)
  | _ -> ());
  let tmpl, workspace = domain_template tech arc in
  let compiled = specialize tmpl tech arc ~seed point in
  let rec attempt retries window =
    if retries > 3 then begin
      Telemetry.incr Telemetry.sim_failures;
      raise (retry_budget_exhausted ctx ~retries ~window)
    end;
    if retries > 0 then Telemetry.incr Telemetry.sim_retries;
    let opts = attempt_options point ~window in
    count_simulation ();
    let res =
      Transient.run_recovered ~workspace ~record:tmpl.t_record opts compiled
    in
    match measure tmpl arc point ~retries res with
    | Some m -> m
    | None -> attempt (retries + 1) (window *. 3.0)
  in
  Telemetry.with_span Telemetry.span_simulate (fun () ->
      Slc_error.with_context ctx (fun () ->
          attempt 0 (initial_window tmpl point)))

(* ------------------------------------------------------------------ *)
(* Batched measurement.

   One call measures a whole array of (seed, point) lanes for the same
   (tech, arc): every lane is specialized from the shared compiled
   template and the batch transient engine (Transient.run_batch)
   advances all of them in lockstep through one structure-of-arrays
   Newton loop.  Control flow per lane is the scalar [simulate]'s —
   same validity check, fault injection, retry-with-longer-window
   policy, one [count_simulation] per lane per attempt, same typed
   failures with the same context — so callers observe per-lane results
   and accounting identical to N scalar calls, just faster. *)

(* Per-domain batch workspaces, one per (tech, arc) shape, reused by
   every batch the domain processes (the workspace grows to the largest
   lane count seen). *)
let[@slc.domain_safe "per-domain storage via Parallel.Slot"] domain_batch_workspaces :
    (Tech.t * Arc.t, Transient.batch_workspace) Hashtbl.t
    Slc_num.Parallel.Slot.t =
  Slc_num.Parallel.Slot.make (fun () -> Hashtbl.create 8)

let domain_batch_workspace tech arc tmpl ~lanes =
  let tbl = Slc_num.Parallel.Slot.get domain_batch_workspaces in
  let key = (tech, arc) in
  match Hashtbl.find_opt tbl key with
  | Some bws -> bws
  | None ->
    let bws = Transient.make_batch_workspace tmpl.t_compiled ~lanes in
    Hashtbl.add tbl key bws;
    bws

(* Attach the lane's context to a failure that escaped the solver with
   an empty one (exactly what Slc_error.with_context does around the
   scalar flow). *)
let annotate_exn ctx e =
  try Slc_error.with_context ctx (fun () -> raise e) with e -> e

(* A lane being worked on: resolved lanes hold their final outcome,
   live lanes their retry state. *)
type lane_state =
  | L_live of { retries : int; window : float }
  | L_resolved of (measurement, exn) result

let simulate_chunk tech (arc : Arc.t) lanes =
  let nl = Array.length lanes in
  let states = Array.make nl (L_live { retries = 0; window = 0.0 }) in
  let ctxs =
    Array.map (fun (seed, point) -> context_of ~seed tech arc point) lanes
  in
  let injector = Atomic.get fault_injector in
  let any_live = ref false in
  Array.iteri
    (fun l (seed, point) ->
      if point.sin <= 0.0 || point.cload < 0.0 || point.vdd <= 0.0 then
        states.(l) <-
          L_resolved
            (Error
               (Slc_error.Invalid_input
                  (Slc_error.invalid ~site:"Harness.build_netlist"
                     "invalid input condition")))
      else
        match injector with
        | Some inject when inject seed point ->
          Telemetry.incr Telemetry.sim_failures;
          states.(l) <- L_resolved (Error (injected_fault ctxs.(l)))
        | _ -> any_live := true)
    lanes;
  if !any_live then begin
    let tmpl, sws = domain_template tech arc in
    let bws = domain_batch_workspace tech arc tmpl ~lanes:nl in
    let compiled =
      Array.mapi
        (fun l (seed, point) ->
          match states.(l) with
          | L_live _ ->
            states.(l) <-
              L_live { retries = 0; window = initial_window tmpl point };
            Some (specialize tmpl tech arc ~seed point)
          | L_resolved _ -> None)
        lanes
    in
    (* Attempt passes: every live lane simulates once per pass (in
       lockstep through the batch engine); lanes whose edge was not
       captured retry next pass with a 3x window until the budget is
       spent.  Lane order within a pass matches the scalar call order. *)
    let live = ref [] in
    Array.iteri
      (fun l s -> match s with L_live _ -> live := l :: !live | _ -> ())
      states;
    let live = ref (List.rev !live) in
    while !live <> [] do
      let pending =
        List.filter
          (fun l ->
            match states.(l) with
            | L_live { retries; window } when retries > 3 ->
              Telemetry.incr Telemetry.sim_failures;
              states.(l) <-
                L_resolved
                  (Error (retry_budget_exhausted ctxs.(l) ~retries ~window));
              false
            | L_live { retries; _ } ->
              if retries > 0 then Telemetry.incr Telemetry.sim_retries;
              count_simulation ();
              true
            | L_resolved _ -> false)
          !live
      in
      let batch =
        Array.of_list
          (List.map
             (fun l ->
               let _, point = lanes.(l) in
               let window =
                 match states.(l) with
                 | L_live { window; _ } -> window
                 | L_resolved _ -> assert false
               in
               (attempt_options point ~window, Option.get compiled.(l)))
             pending)
      in
      let results =
        if Array.length batch = 0 then [||]
        else
          Telemetry.with_span Telemetry.span_simulate (fun () ->
              Transient.run_batch ~workspace:bws ~scalar_workspace:sws
                ~record:tmpl.t_record batch)
      in
      List.iteri
        (fun i l ->
          let _, point = lanes.(l) in
          match results.(i) with
          | Error e -> states.(l) <- L_resolved (Error (annotate_exn ctxs.(l) e))
          | Ok res -> (
            let retries, window =
              match states.(l) with
              | L_live { retries; window } -> (retries, window)
              | L_resolved _ -> assert false
            in
            match measure tmpl arc point ~retries res with
            | Some m -> states.(l) <- L_resolved (Ok m)
            | None ->
              states.(l) <-
                L_live { retries = retries + 1; window = window *. 3.0 }))
        pending;
      live :=
        List.filter
          (fun l -> match states.(l) with L_live _ -> true | _ -> false)
          !live
    done
  end;
  Array.map
    (function
      | L_resolved r -> r
      | L_live _ -> assert false)
    states

(* Lanes per in-domain batch: large enough to amortize per-batch
   overhead (template lookup, workspace setup), small enough that the
   domain pool's dynamic chunking still balances load. *)
let batch_lanes = 16

let simulate_batch ?(chunk = batch_lanes) tech arc lanes =
  if chunk <= 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Harness.simulate_batch" "chunk <= 0";
  let n = Array.length lanes in
  if n = 0 then [||]
  else begin
    let nchunks = (n + chunk - 1) / chunk in
    if nchunks = 1 then simulate_chunk tech arc lanes
    else
      let chunks =
        Array.init nchunks (fun ci ->
            let lo = ci * chunk in
            Array.sub lanes lo (min chunk (n - lo)))
      in
      let rs =
        Slc_num.Parallel.map (fun ch -> simulate_chunk tech arc ch) chunks
      in
      Array.concat (Array.to_list rs)
  end
