(** NLDM-style look-up tables — the conventional characterization the
    paper benchmarks against.

    A table stores delay and output slew on a rectilinear
    [Sin x Cload x Vdd] grid and answers arbitrary points by trilinear
    interpolation (constant along axes that have a single level).  The
    cost of building a table is exactly its number of grid points, in
    simulator runs — the paper's [N_LUT]. *)

type t = {
  arc_name : string;
  sin_axis : float array;
  cload_axis : float array;
  vdd_axis : float array;
  td : float array array array;    (** indexed [sin][cload][vdd] *)
  sout : float array array array;
  energy : float array array array;  (** switching energy, J *)
}

val size : t -> int
(** Number of grid points = simulator runs used to build the table. *)

val design_levels : budget:int -> box:Slc_prob.Sampling.box -> int array
(** Axis level counts [| n_sin; n_cload; n_vdd |] whose product is as
    close to [budget] as possible without exceeding it, preferring
    balanced [Sin]/[Cload] resolution over [Vdd] (the conventional NLDM
    shape).  Every count is at least 1. *)

val axes_of_levels : box:Slc_prob.Sampling.box -> int array -> float array array
(** Evenly spaced levels per axis (a singleton level sits at the box
    center). *)

val build :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Arc.t ->
  levels:int array ->
  t
(** Simulates every grid point. *)

val build_on_axes :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Arc.t ->
  axes:float array array ->
  t

val lookup_td : t -> Harness.point -> float
(** Trilinearly interpolated delay at an arbitrary ξ (linear
    extrapolation outside the grid, constant along singleton axes). *)

val lookup_sout : t -> Harness.point -> float
(** Interpolated output slew; same scheme as {!lookup_td}. *)

val lookup_energy : t -> Harness.point -> float
(** Interpolated switching energy, J; same scheme as {!lookup_td}. *)

(** {2 Serialization}

    Tables are the unit of paid-for characterization work, so the
    persistent store keeps them on disk.  The format is line-oriented
    text whose floats use the exact hexadecimal encoding
    ({!Slc_num.Hexfloat}): a reloaded table is bitwise identical to the
    one written — lookups through it return the same 64-bit values. *)

exception Format_error of string

val to_string : t -> string
(** Versioned line-oriented text (header, axes, value grids). *)

val of_string : string -> t
(** Raises {!Format_error} on malformed input or an unsupported format
    version. *)

val to_buffer : Buffer.t -> t -> unit
(** Appends exactly what {!to_string} returns — used by containers
    (e.g. {!Library}) that embed table blocks in their own format. *)

val parse_lines : (unit -> string) -> t
(** Parses one table block from a line cursor (the inverse of
    {!to_buffer}); the cursor must yield trimmed, non-empty lines.
    Raises {!Format_error}. *)
