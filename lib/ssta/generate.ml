module Cells = Slc_cell.Cells
module Rng = Slc_prob.Rng

type design = {
  dag : Sdag.t;
  inputs : Sdag.net array;
  outputs : Sdag.net array;
  compiled : Sdag.compiled;
}

let default_cells = [| Cells.inv; Cells.nand2; Cells.nor2 |]

(* One exponentially distributed wire load.  The uniform draw is forced
   into (0, 1] before the log: [Rng.float] is specified as [0, 1), so
   [1.0 -. u] is already positive today, but a generator whose draw can
   reach (or round to) 1.0 would make [log 0.0 = -inf] — an infinite
   cap that poisons every downstream arrival.  The clamp is the
   identity for every value the current generator produces, so existing
   seeds keep their bitwise designs. *)
let wire_cap_draw r ~mean =
  let u = 1.0 -. Rng.float r in
  let u = if u > 0.0 then u else Float.min_float in
  -.mean *. log u

let design ?(inputs = 32) ?(cells = default_cells) ?(mean_wire_cap = 0.5e-15)
    ?(out_load = 2.0e-15) tech ~vdd ~seed ~gates =
  if inputs <= 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Generate.design" "inputs must be > 0";
  if gates <= 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Generate.design" "gates must be > 0";
  if Array.length cells = 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Generate.design" "empty cell set";
  if mean_wire_cap < 0.0 then
    Slc_obs.Slc_error.invalid_input ~site:"Generate.design" "negative wire cap";
  let dag = Sdag.create tech ~vdd in
  let root = Rng.create seed in
  let n_nets = inputs + gates in
  let first = Sdag.input dag "in0" in
  let nets = Array.make n_nets first in
  for i = 1 to inputs - 1 do
    nets.(i) <- Sdag.input dag (Printf.sprintf "in%d" i)
  done;
  let fanout = Array.make n_nets 0 in
  let avail = ref inputs in
  for gi = 0 to gates - 1 do
    (* One sub-stream per gate, derived from (root state, index): the
       construction is serial, but keying by index keeps every gate's
       draws independent of how many draws its predecessors made, so
       editing one cell's pin count never reshuffles the whole design. *)
    let r = Rng.split_ix root gi in
    let cell = cells.(Rng.int r (Array.length cells)) in
    (* Drivers drawn uniformly over all nets created so far: expected
       depth grows logarithmically in the gate count, so big designs
       come out wide and shallow — the interesting regime for levelized
       parallel evaluation — with a skewed fanout distribution (early
       nets accumulate the most sinks). *)
    let pins =
      List.map
        (fun pin ->
          let d = Rng.int r !avail in
          fanout.(d) <- fanout.(d) + 1;
          (pin, nets.(d)))
        cell.Cells.inputs
    in
    let wire_cap = wire_cap_draw r ~mean:mean_wire_cap in
    let out = Sdag.gate dag cell ~pins ~wire_cap (Printf.sprintf "g%d" gi) in
    nets.(!avail) <- out;
    incr avail
  done;
  (* Gate outputs nobody consumes are the primary outputs. *)
  let outs = ref [] in
  for i = n_nets - 1 downto inputs do
    if fanout.(i) = 0 then outs := nets.(i) :: !outs
  done;
  let outputs = Array.of_list !outs in
  Array.iter (fun n -> Sdag.set_load dag n out_load) outputs;
  { dag; inputs = Array.sub nets 0 inputs; outputs; compiled = Sdag.compile dag }

let both_edges ~at ~slew =
  {
    Sdag.rise = Some { Sdag.at; slew };
    fall = Some { Sdag.at; slew };
  }

let required d r = Array.to_list (Array.map (fun n -> (n, r)) d.outputs)
