module Cells = Slc_cell.Cells

type instance = {
  cell_name : string;
  instance_name : string;
  connections : (string * string) list;
}

type t = {
  module_name : string;
  inputs : string list;
  outputs : string list;
  wires : string list;
  instances : instance list;
}

exception Parse_error of string

let fail msg = raise (Parse_error msg)

(* ------------------------------------------------------------------ *)
(* Tokenizer: identifiers and the punctuation ( ) . , ;  — comments and
   whitespace dropped. *)

type token = Id of string | Lp | Rp | Dot | Comma | Semi

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let is_id c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\\' || c = '[' || c = ']'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '(' then (tokens := Lp :: !tokens; incr i)
    else if c = ')' then (tokens := Rp :: !tokens; incr i)
    else if c = '.' then (tokens := Dot :: !tokens; incr i)
    else if c = ',' then (tokens := Comma :: !tokens; incr i)
    else if c = ';' then (tokens := Semi :: !tokens; incr i)
    else if is_id c then begin
      let j = ref !i in
      while !j < n && is_id src.[!j] do
        incr j
      done;
      tokens := Id (String.sub src !i (!j - !i)) :: !tokens;
      i := !j
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser *)

let parse src =
  let toks = ref (tokenize src) in
  let next () =
    match !toks with
    | [] -> fail "unexpected end of input"
    | t :: rest ->
      toks := rest;
      t
  in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let expect_id () =
    match next () with Id s -> s | _ -> fail "expected an identifier"
  in
  let expect tok what =
    if next () <> tok then fail ("expected " ^ what)
  in
  let id_list_until_semi () =
    (* id (, id)* ; *)
    let rec go acc =
      let name = expect_id () in
      match next () with
      | Comma -> go (name :: acc)
      | Semi -> List.rev (name :: acc)
      | _ -> fail "expected , or ; in declaration"
    in
    go []
  in
  (match next () with
  | Id "module" -> ()
  | _ -> fail "expected module");
  let module_name = expect_id () in
  expect Lp "(";
  (* port list *)
  let rec ports acc =
    match next () with
    | Id name -> (
      match next () with
      | Comma -> ports (name :: acc)
      | Rp -> List.rev (name :: acc)
      | _ -> fail "expected , or ) in port list")
    | Rp -> List.rev acc
    | _ -> fail "bad port list"
  in
  let port_names = ports [] in
  expect Semi ";";
  let inputs = ref [] and outputs = ref [] and wires = ref [] in
  let instances = ref [] in
  let declare kind names =
    List.iter
      (fun name ->
        if
          List.mem name !inputs || List.mem name !outputs
          || List.mem name !wires
        then fail (Printf.sprintf "net %s declared twice" name);
        match kind with
        | `Input -> inputs := name :: !inputs
        | `Output -> outputs := name :: !outputs
        | `Wire -> wires := name :: !wires)
      names
  in
  let parse_instance cell_name =
    let instance_name = expect_id () in
    expect Lp "(";
    let rec conns acc =
      expect Dot ".";
      let pin = expect_id () in
      expect Lp "(";
      let net = expect_id () in
      expect Rp ")";
      match next () with
      | Comma -> conns ((pin, net) :: acc)
      | Rp -> List.rev ((pin, net) :: acc)
      | _ -> fail "expected , or ) in connection list"
    in
    let connections = conns [] in
    expect Semi ";";
    instances := { cell_name; instance_name; connections } :: !instances
  in
  let rec body () =
    match peek () with
    | None -> fail "missing endmodule"
    | Some (Id "endmodule") ->
      toks := List.tl !toks
    | Some (Id "input") ->
      toks := List.tl !toks;
      declare `Input (id_list_until_semi ());
      body ()
    | Some (Id "output") ->
      toks := List.tl !toks;
      declare `Output (id_list_until_semi ());
      body ()
    | Some (Id "wire") ->
      toks := List.tl !toks;
      declare `Wire (id_list_until_semi ());
      body ()
    | Some (Id cell_name) ->
      toks := List.tl !toks;
      parse_instance cell_name;
      body ()
    | Some _ -> fail "unexpected token in module body"
  in
  body ();
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  let wires = List.rev !wires in
  (* Every port must be declared; every referenced net must exist. *)
  List.iter
    (fun p ->
      if not (List.mem p inputs || List.mem p outputs) then
        fail (Printf.sprintf "port %s lacks an input/output declaration" p))
    port_names;
  let known net =
    List.mem net inputs || List.mem net outputs || List.mem net wires
  in
  List.iter
    (fun inst ->
      List.iter
        (fun (_, net) ->
          if not (known net) then
            fail
              (Printf.sprintf "instance %s references undeclared net %s"
                 inst.instance_name net))
        inst.connections)
    !instances;
  {
    module_name;
    inputs;
    outputs;
    wires;
    instances = List.rev !instances;
  }

(* ------------------------------------------------------------------ *)
(* DAG construction with topological ordering of instances. *)

let to_sdag t tech ~vdd =
  let dag = Sdag.create tech ~vdd in
  (* Output net of each instance. *)
  let out_net inst =
    match List.assoc_opt "Y" inst.connections with
    | Some net -> net
    | None ->
      fail (Printf.sprintf "instance %s has no .Y output" inst.instance_name)
  in
  (* Multiply-driven check. *)
  let driven = Hashtbl.create 16 in
  List.iter
    (fun inst ->
      let net = out_net inst in
      if Hashtbl.mem driven net then
        fail (Printf.sprintf "net %s driven more than once" net);
      if List.mem net t.inputs then
        fail (Printf.sprintf "primary input %s driven by %s" net
                inst.instance_name);
      Hashtbl.add driven net inst.instance_name)
    t.instances;
  let nets : (string, Sdag.net) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.add nets name (Sdag.input dag name))
    t.inputs;
  (* Repeatedly place instances whose input nets are all defined. *)
  let remaining = ref t.instances in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let still = ref [] in
    List.iter
      (fun inst ->
        let ins =
          List.filter (fun (pin, _) -> not (String.equal pin "Y"))
            inst.connections
        in
        if List.for_all (fun (_, net) -> Hashtbl.mem nets net) ins then begin
          let cell =
            match Cells.by_name inst.cell_name with
            | c -> c
            | exception Not_found ->
              fail (Printf.sprintf "unknown cell type %s" inst.cell_name)
          in
          let pins =
            List.map (fun (pin, net) -> (pin, Hashtbl.find nets net)) ins
          in
          let out =
            match Sdag.gate dag cell ~pins (out_net inst) with
            | net -> net
            | exception Slc_obs.Slc_error.Invalid_input iv ->
              fail iv.Slc_obs.Slc_error.iv_detail
          in
          Hashtbl.replace nets (out_net inst) out;
          progress := true
        end
        else still := inst :: !still)
      !remaining;
    remaining := List.rev !still
  done;
  (match !remaining with
  | [] -> ()
  | inst :: _ ->
    fail
      (Printf.sprintf
         "combinational loop or undriven net involving instance %s"
         inst.instance_name));
  (* Undriven internal nets used as gate inputs would have been caught
     above; undriven outputs are reported here. *)
  let lookup name =
    match Hashtbl.find_opt nets name with
    | Some n -> n
    | None -> fail (Printf.sprintf "output %s is never driven" name)
  in
  let ins = List.map (fun n -> (n, Hashtbl.find nets n)) t.inputs in
  let outs = List.map (fun n -> (n, lookup n)) t.outputs in
  (dag, ins, outs)
