module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Library = Slc_cell.Library
module Nldm = Slc_cell.Nldm
module Char_flow = Slc_core.Char_flow
module Telemetry = Slc_obs.Telemetry

type t = {
  query : Arc.t -> Harness.point -> float * float;
  label : string;
}

(* The per-oracle arc memo is queried concurrently: a levelized
   parallel timing pass ([Sdag.forward_compiled]) calls [oracle.query]
   from every pool domain on shard-cache misses, and the long-lived
   characterization server answers many connections against one oracle
   value.  The table is therefore mutex-guarded with
   first-publication-wins insertion; [build] runs OUTSIDE the lock —
   predictor training costs simulations (possibly through the worker
   pool itself) and must not serialize on it.  Builds are deterministic,
   so a losing build produces the same value the winner published and
   discarding it never changes results. *)
let memo_by_arc build =
  let table : (string, 'a) Hashtbl.t = Hashtbl.create 16 in
  let lock = Mutex.create () in
  fun arc ->
    let key = Arc.name arc in
    Mutex.lock lock;
    let hit = Hashtbl.find_opt table key in
    Mutex.unlock lock;
    match hit with
    | Some v -> v
    | None ->
      let v = build arc in
      Mutex.lock lock;
      let v =
        match Hashtbl.find_opt table key with
        | Some first -> first
        | None ->
          Hashtbl.add table key v;
          v
      in
      Mutex.unlock lock;
      v

let of_predictors ~label build =
  let get = memo_by_arc build in
  {
    label;
    query =
      (fun arc point ->
        let p = get arc in
        (p.Char_flow.predict_td point, p.Char_flow.predict_sout point));
  }

let of_library lib =
  {
    label = "nldm-library";
    query =
      (fun arc point ->
        match
          Library.find lib ~cell:arc.Arc.cell.Slc_cell.Cells.name
            ~pin:arc.Arc.pin ~out_dir:arc.Arc.out_dir
        with
        | Some e ->
          (Nldm.lookup_td e.Library.table point,
           Nldm.lookup_sout e.Library.table point)
        | None -> raise Not_found);
  }

let of_simulator ?seed tech =
  {
    label = "simulator";
    query =
      (fun arc point ->
        let m = Harness.simulate ?seed tech arc point in
        (m.Harness.td, m.Harness.sout));
  }

(* ------------------------------------------------------------------ *)
(* Query-result cache.

   Oracle queries are pure (training happens once per arc; predictors
   and tables are deterministic functions of the point), so repeated
   identical queries — a fanout net driving many gates, a path re-timed
   at the same slew — can reuse the first answer.  With no slew bucket
   the cache is exact: keys are the literal point coordinates, and
   cached results are bitwise identical to uncached ones.  With a
   bucket, the input slew is quantized to a multiple of the bucket and
   the underlying oracle is queried AT the quantized point, so nearby
   slews share one answer deterministically (an approximation the
   caller opts into, bounded by the oracle's sensitivity over one
   bucket). *)

(* The table is sharded by key hash so that concurrent queries from a
   levelized parallel timing pass contend on independent locks instead
   of serializing on one.  Sharding is invisible to callers: each key
   lives in exactly one shard, lookups and first-publication-wins
   insertion behave as before, and results stay bitwise identical
   (queries are pure, so WHICH caller computes a value never matters —
   only that all callers then see the same published answer). *)

type shard = {
  s_tbl : (string * float * float * float, float * float) Hashtbl.t;
  s_lock : Mutex.t;
}

type cache = {
  c_shards : shard array; (* length is a power of two *)
  c_bucket : float option;
}

let default_shards = 16

let make_cache ?slew_bucket ?(shards = default_shards) () =
  (match slew_bucket with
  | Some b when b <= 0.0 -> Slc_obs.Slc_error.invalid_input ~site:"Oracle.make_cache" "bucket <= 0"
  | _ -> ());
  if shards <= 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Oracle.make_cache" "shards <= 0";
  (* Round up to a power of two so shard selection is a mask. *)
  let n = ref 1 in
  while !n < shards do
    n := !n * 2
  done;
  {
    c_shards =
      Array.init !n (fun _ ->
          { s_tbl = Hashtbl.create 64; s_lock = Mutex.create () });
    c_bucket = slew_bucket;
  }

let cache_size c =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.s_lock;
      let n = Hashtbl.length s.s_tbl in
      Mutex.unlock s.s_lock;
      acc + n)
    0 c.c_shards

let cached c oracle =
  let mask = Array.length c.c_shards - 1 in
  let query arc (point : Harness.point) =
    let point =
      match c.c_bucket with
      | None -> point
      | Some b ->
        (* Quantize to a positive multiple of the bucket (a slew of 0
           would be an invalid simulation condition). *)
        let q = Float.max 1.0 (Float.round (point.Harness.sin /. b)) in
        { point with Harness.sin = q *. b }
    in
    let key =
      (Arc.name arc, point.Harness.sin, point.Harness.cload, point.Harness.vdd)
    in
    let s = c.c_shards.(Hashtbl.hash key land mask) in
    Mutex.lock s.s_lock;
    let hit = Hashtbl.find_opt s.s_tbl key in
    Mutex.unlock s.s_lock;
    match hit with
    | Some r ->
      Telemetry.incr Telemetry.oracle_hits;
      r
    | None ->
      Telemetry.incr Telemetry.oracle_misses;
      let r = oracle.query arc point in
      Mutex.lock s.s_lock;
      (* Under a race the first publication wins, so every caller sees
         one consistent answer. *)
      let r =
        match Hashtbl.find_opt s.s_tbl key with
        | Some first -> first
        | None ->
          Hashtbl.add s.s_tbl key r;
          r
      in
      Mutex.unlock s.s_lock;
      r
  in
  { oracle with query }

(* ------------------------------------------------------------------ *)
(* Process-wide trained-predictor cache for [bayes_bank].

   Training is deterministic and pure — the same (prior, tech, k, seed,
   arc) always yields the same predictor — so, exactly like the
   compiled-testbench cache in Harness, there is no reason to pay the
   k simulations again because a caller rebuilt the oracle value.
   Priors are compared physically (a registry assigns each distinct
   prior pair an id): value equality over closures is not decidable,
   and the flows that matter reuse one learned prior object. *)

let[@slc.domain_safe "guarded by prior_registry_lock"] prior_registry :
    (Slc_core.Prior.pair * int) list ref =
  ref []

let prior_registry_lock = Mutex.create ()

let prior_id prior =
  Mutex.lock prior_registry_lock;
  let id =
    match List.find_opt (fun (p, _) -> p == prior) !prior_registry with
    | Some (_, id) -> id
    | None ->
      let id = List.length !prior_registry in
      prior_registry := (prior, id) :: !prior_registry;
      id
  in
  Mutex.unlock prior_registry_lock;
  id

type trained_key =
  int
  * string
  * int
  * Slc_device.Process.seed option
  * string
  * float option (* GPR-fallback threshold, None = analytical only *)

let[@slc.domain_safe "guarded by trained_lock"] trained :
    (trained_key, Char_flow.predictor) Hashtbl.t =
  Hashtbl.create 32

let trained_lock = Mutex.create ()

let bayes_bank ?seed ?store ?gpr_fallback ~prior tech ~k =
  let pid = prior_id prior in
  (* The persistent tier keys by prior content, not physical identity:
     serialize the prior once per bank, not once per arc. *)
  let persistent =
    Option.map
      (fun st -> (st, Slc_store.Store.prior_fingerprint prior))
      store
  in
  of_predictors ~label:(Printf.sprintf "bayes-k%d" k) (fun arc ->
      let key =
        (pid, tech.Slc_device.Tech.name, k, seed, Arc.name arc, gpr_fallback)
      in
      Mutex.lock trained_lock;
      let hit = Hashtbl.find_opt trained key in
      Mutex.unlock trained_lock;
      match hit with
      | Some p ->
        Telemetry.incr Telemetry.trained_hits;
        p
      | None ->
        Telemetry.incr Telemetry.trained_misses;
        let skey =
          Option.map
            (fun (st, prior_fp) ->
              ( st,
                Slc_store.Store.predictor_key ?gpr:gpr_fallback ~prior_fp
                  ~tech ~arc ~k ~seed () ))
            persistent
        in
        let p =
          match skey with
          | None -> None
          | Some (st, skey) -> (
            match Slc_store.Store.find_predictor ?seed st ~key:skey ~tech ~arc with
            | Some p ->
              Telemetry.incr Telemetry.store_hits;
              Some p
            | None ->
              Telemetry.incr Telemetry.store_misses;
              None)
        in
        let p =
          match p with
          | Some p -> p
          | None ->
            (* Train outside the lock: training runs simulations
               (possibly through the worker pool) and must not
               serialize on it. *)
            let p =
              match gpr_fallback with
              | None -> Char_flow.train_bayes ?seed ~prior tech arc ~k
              | Some threshold ->
                (* Same curated design and MAP fit as [train_bayes],
                   but the dataset is kept so the analytical fit can
                   be checked against it and replaced by a GPR model
                   when its residuals exceed the threshold. *)
                let ds =
                  Char_flow.simulate_dataset ?seed tech arc
                    (Slc_core.Input_space.fitting_points tech ~k)
                in
                let p = Char_flow.train_bayes_on ?seed ~prior tech ds in
                Char_flow.with_gpr_fallback ~threshold tech ds p
            in
            Option.iter
              (fun (st, skey) -> Slc_store.Store.put_predictor st ~key:skey p)
              skey;
            p
        in
        Mutex.lock trained_lock;
        let p =
          match Hashtbl.find_opt trained key with
          | Some first -> first
          | None ->
            Hashtbl.add trained key p;
            p
        in
        Mutex.unlock trained_lock;
        p)
