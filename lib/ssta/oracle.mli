(** Delay/slew oracles: the interface between timing analysis and a
    characterized library.  An oracle answers "delay and output slew of
    this arc at this input condition" — from the compact Bayesian
    model, from an NLDM table, or straight from the simulator (for
    validation). *)

type t = {
  query : Slc_cell.Arc.t -> Slc_cell.Harness.point -> float * float;
      (** [(delay, output slew)] *)
  label : string;
}

val of_predictors :
  label:string ->
  (Slc_cell.Arc.t -> Slc_core.Char_flow.predictor) ->
  t
(** Backed by per-arc predictors (e.g. {!Slc_core.Char_flow.train_bayes});
    the function is called once per distinct arc and memoized.

    The memo table is domain-safe: concurrent queries (the levelized
    parallel timing pass, the characterization server) publish
    first-build-wins under a mutex, with the build itself running
    outside the lock.  Builds must be deterministic — concurrent misses
    on the same arc may build more than once, and every caller then
    sees the single published value. *)

val of_library : Slc_cell.Library.t -> t
(** Backed by interpolated NLDM tables; raises [Not_found] when queried
    for an arc the library does not contain. *)

val of_simulator :
  ?seed:Slc_device.Process.seed -> Slc_device.Tech.t -> t
(** Ground truth: every query is one transient simulation. *)

val bayes_bank :
  ?seed:Slc_device.Process.seed ->
  ?store:Slc_store.Store.t ->
  ?gpr_fallback:float ->
  prior:Slc_core.Prior.pair ->
  Slc_device.Tech.t ->
  k:int ->
  t
(** Convenience: an oracle that trains a Bayesian/MAP predictor with
    [k] simulations for each arc on first use.

    With [?gpr_fallback] (a mean-|relative-error| threshold), each
    arc's analytical MAP fit is checked against its own [k]-point
    training dataset and replaced by a nonparametric GPR model
    ({!Slc_core.Char_flow.with_gpr_fallback}) when the 4-parameter
    form fits poorly — the low-Vdd/break-point regime.  The threshold
    participates in both cache tiers' keys; without it, behaviour and
    store keys are byte-identical to earlier releases.

    Trained predictors are cached process-wide, keyed by (prior
    {e physical identity}, technology name, [k], [seed], arc name,
    fallback threshold):
    rebuilding a [bayes_bank] value with the same learned prior object
    reuses the existing predictors and costs zero simulations.
    Training is deterministic, so the cache never changes results.

    With [?store], a second {e persistent} tier sits behind the
    in-process cache: an arc missing from the process cache is looked
    up in the artifact store — keyed by prior {e content}
    ({!Slc_store.Store.prior_fingerprint}), technology fingerprint,
    arc, [k] and [seed] — and only trained (then persisted) when the
    store misses too.  A later process querying the same bank pays
    zero simulations, and the rebuilt predictors answer bitwise
    identically to freshly trained ones. *)

(** {2 Query-result caching} *)

type cache
(** A mutable, domain-safe map from (arc, point) to query results.
    Oracle queries are pure, so identical queries can reuse the first
    answer — fanout nets and repeated path timings stop re-deriving
    identical arc delays. *)

val make_cache : ?slew_bucket:float -> ?shards:int -> unit -> cache
(** With no [slew_bucket] the cache is exact (keys are the literal
    point coordinates; results are bitwise identical to the uncached
    oracle).  With a bucket (seconds, > 0), input slews are quantized
    to positive multiples of it and the oracle is queried at the
    quantized point: nearby slews deterministically share one answer,
    trading bounded accuracy for fewer queries.

    The table is internally sharded by key hash ([?shards], default 16,
    rounded up to a power of two) so concurrent queries — a levelized
    parallel timing pass — contend on independent locks rather than
    serializing on one.  Sharding never changes results. *)

val cached : cache -> t -> t
(** [cached c oracle] wraps [oracle] so queries go through [c].  A
    cache may outlive the wrapper and be shared across analyses (only
    meaningful while the underlying oracle answers consistently). *)

val cache_size : cache -> int
(** Number of distinct memoized queries. *)
