module Describe = Slc_prob.Describe

type result = {
  clock_period : float;
  n_seeds : int;
  n_pass : int;
  yield : float;
  delays : float array;
  mean_delay : float;
  sigma_delay : float;
  worst_delay : float;
}

let of_delays ~clock_period delays =
  let n = Array.length delays in
  if n < 2 then Slc_obs.Slc_error.invalid_input ~site:"Yield.of_delays" "need >= 2 seeds";
  if clock_period <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Yield.of_delays" "bad period";
  let n_pass =
    Array.fold_left (fun acc d -> if d <= clock_period then acc + 1 else acc) 0 delays
  in
  {
    clock_period;
    n_seeds = n;
    n_pass;
    yield = float_of_int n_pass /. float_of_int n;
    delays = Array.copy delays;
    mean_delay = Describe.mean delays;
    sigma_delay = Describe.std delays;
    worst_delay = Array.fold_left Float.max delays.(0) delays;
  }

let of_path ~population ~seeds ~clock_period chain ~sin ~vdd ~in_rises =
  let delays = Path.statistical ~population ~seeds chain ~sin ~vdd ~in_rises in
  of_delays ~clock_period delays

let of_dag ~population ~seeds ~clock_period dag ~input_arrivals ~outputs =
  let module Statistical = Slc_core.Statistical in
  let table : (string, Statistical.population) Hashtbl.t = Hashtbl.create 8 in
  let pop_of arc =
    let key = Slc_cell.Arc.name arc in
    match Hashtbl.find_opt table key with
    | Some p -> p
    | None ->
      let p = population arc in
      Hashtbl.add table key p;
      p
  in
  let delays =
    Array.map
      (fun seed ->
        let oracle =
          {
            Oracle.label = "per-seed";
            query =
              (fun arc point ->
                let pop = pop_of arc in
                ( pop.Statistical.predict_td seed point,
                  pop.Statistical.predict_sout seed point ));
          }
        in
        let worst = ref neg_infinity in
        List.iter
          (fun out ->
            let arr = Sdag.analyze dag oracle ~input_arrivals out in
            List.iter
              (fun rises ->
                match Sdag.at_edge arr ~rises with
                | Some e -> worst := Float.max !worst e.Sdag.at
                | None -> ())
              [ true; false ])
          outputs;
        if !worst = neg_infinity then
          Slc_obs.Slc_error.invalid_input ~site:"Yield.of_dag" "no arrival at any output";
        !worst)
      seeds
  in
  of_delays ~clock_period delays

let required_period r ~target_yield =
  if target_yield <= 0.0 || target_yield > 1.0 then
    Slc_obs.Slc_error.invalid_input ~site:"Yield.required_period" "target must be in (0,1]";
  Describe.quantile r.delays target_yield

let pp ppf r =
  Format.fprintf ppf
    "yield %.1f%% at Tclk=%.2fps over %d seeds (path delay %.2f +/- %.2f ps, worst %.2f)"
    (100.0 *. r.yield)
    (r.clock_period *. 1e12)
    r.n_seeds
    (r.mean_delay *. 1e12)
    (r.sigma_delay *. 1e12)
    (r.worst_delay *. 1e12)
