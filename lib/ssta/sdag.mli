(** A static-timing DAG over standard cells.

    Nets carry separate rise and fall arrivals (time + slew).  Each
    gate input pin contributes candidate arrivals at the output through
    the corresponding timing arc (all built-in cells are inverting, so
    an input rise produces an output fall); the latest candidate wins
    per output edge — ordinary block-based STA, with the delay/slew
    numbers supplied by any {!Oracle.t}.

    Gates must be added after their driver nets (construction order is
    the topological order), which the builder enforces.  The builder is
    array-backed: net-name lookup is O(1) and per-net total capacitance
    is accumulated incrementally as fanout pins are connected, so no
    pass over the netlist is quadratic in its size.

    For repeated or large analyses, {!compile} snapshots the builder
    into an immutable {!compiled} graph: int-indexed pin arrays,
    pre-resolved timing-arc candidates, frozen per-output loads, and an
    ASAP levelization that lets each level's gates be timed in parallel
    over the {!Slc_num.Parallel} domain pool.  Parallel evaluation is
    bitwise identical to sequential ([Parallel.sequential]) evaluation:
    gates write disjoint result slots and oracle queries are pure and
    memoized first-publication-wins. *)

type t

type net

val create : Slc_device.Tech.t -> vdd:float -> t
(** An empty DAG; the technology supplies pin input capacitances (for
    loads) and [vdd] is the operating supply every arc is timed at. *)

val input : t -> string -> net
(** Declares a primary input net. *)

val gate :
  t -> Slc_cell.Cells.t -> pins:(string * net) list -> ?wire_cap:float ->
  string -> net
(** [gate dag cell ~pins name] instantiates [cell] with every input pin
    connected per [pins] and returns its output net.  Raises
    [Invalid_argument] on missing/extra pins. *)

val set_load : t -> net -> float -> unit
(** Extra capacitive load on a net (primary-output load). *)

type edge_arrival = { at : float; slew : float }

type arrival = { rise : edge_arrival option; fall : edge_arrival option }

val analyze :
  ?cache:Oracle.cache ->
  ?domains:int ->
  t ->
  Oracle.t ->
  input_arrivals:(string -> arrival) ->
  net ->
  arrival
(** Arrival at the given net once every primary input is given its
    arrival/slew per edge.  Nets driven only by non-arriving edges
    propagate [None] (e.g. a one-sided input transition yields
    alternating one-sided arrivals down an inverter chain).

    Repeated oracle queries within the pass are memoized exactly (a
    fanout net timing many siblings at one slew/load re-derives the
    arc delay once); pass [?cache] to keep the memo across calls —
    exact by default, or slew-bucketed if the cache was built with
    one.  Results with the default or an exact cache are identical to
    the unmemoized pass.

    [?domains] sizes the per-level parallel evaluation (default: the
    {!Slc_num.Parallel} pool default).  Results are bitwise independent
    of the domain count.  Compiles the graph internally; hot callers
    should {!compile} once and use {!analyze_compiled}. *)

type slack_row = {
  net_label : string;
  arrival_time : float;   (** worst (latest) arrival over both edges *)
  required_time : float;  (** earliest requirement propagated backward *)
  slack : float;          (** required - arrival; negative = violation *)
}

val slack_report :
  ?cache:Oracle.cache ->
  ?domains:int ->
  t ->
  Oracle.t ->
  input_arrivals:(string -> arrival) ->
  outputs:(net * float) list ->
  slack_row list
(** Full forward arrival pass plus a backward required-time pass from
    the given (output net, required time) constraints.  Returns one row
    per net that has a finite arrival, sorted most-critical first.
    Nets with no requirement reachable from them get infinite slack.
    Oracle queries are memoized as in {!analyze}. *)

val net_name : t -> net -> string
(** The label the net was created under.  O(1). *)

val net_cap : t -> net -> float
(** Total capacitance on a net: explicit loads ({!set_load} /
    [?wire_cap]) plus the input capacitance of every fanout pin
    connected so far.  O(1): fanout caps are accumulated as gates are
    added, in connection order, so the total is bitwise identical to a
    fresh summation over the netlist. *)

val at_edge : arrival -> rises:bool -> edge_arrival option
(** Selects the rising or falling component of an arrival. *)

val input_edge : at:float -> slew:float -> rises:bool -> arrival
(** Convenience constructor for a single-edge input arrival. *)

(** {2 Compiled graphs}

    An immutable snapshot of the DAG, built once and reused across
    passes.  Compilation resolves each distinct (cell, pin, edge)
    timing arc once, freezes every output net's total load, and groups
    gates into ASAP levels for parallel evaluation. *)

type compiled

val compile : t -> compiled
(** Snapshot the builder.  Later mutations of [t] (more gates, more
    loads) are not reflected; compile again.  O(nets + pins). *)

val compiled_nets : compiled -> int
(** Number of nets (primary inputs + gate outputs). *)

val compiled_gates : compiled -> int

val level_widths : compiled -> int array
(** Gates per ASAP level, in level order — the available parallelism
    profile of the design. *)

val analyze_compiled :
  ?cache:Oracle.cache ->
  ?domains:int ->
  compiled ->
  Oracle.t ->
  input_arrivals:(string -> arrival) ->
  net ->
  arrival
(** {!analyze} over a compiled graph, skipping recompilation. *)

val slack_report_compiled :
  ?cache:Oracle.cache ->
  ?domains:int ->
  compiled ->
  Oracle.t ->
  input_arrivals:(string -> arrival) ->
  outputs:(net * float) list ->
  slack_row list
(** {!slack_report} over a compiled graph, skipping recompilation. *)
