module Arc = Slc_cell.Arc
module Cells = Slc_cell.Cells
module Equivalent = Slc_cell.Equivalent
module Harness = Slc_cell.Harness
module Tech = Slc_device.Tech

type net = int

type gate_inst = {
  cell : Cells.t;
  pins : (string * net) list;
  out : net;
}

type t = {
  tech : Tech.t;
  vdd : float;
  mutable nets : (string * [ `Input | `Gate of int ]) list; (* reversed *)
  mutable n_nets : int;
  mutable gates : gate_inst list; (* reversed; index = position *)
  mutable n_gates : int;
  loads : (net, float) Hashtbl.t;
}

let create tech ~vdd =
  if vdd <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Sdag.create" "vdd must be > 0";
  {
    tech;
    vdd;
    nets = [];
    n_nets = 0;
    gates = [];
    n_gates = 0;
    loads = Hashtbl.create 8;
  }

let fresh_net t name origin =
  let id = t.n_nets in
  t.n_nets <- t.n_nets + 1;
  t.nets <- (name, origin) :: t.nets;
  id

let input t name = fresh_net t name `Input

let check_net t n =
  if n < 0 || n >= t.n_nets then Slc_obs.Slc_error.invalid_input ~site:"Sdag" "unknown net"

let gate t cell ~pins ?(wire_cap = 0.0) name =
  let expected = List.sort compare cell.Cells.inputs in
  let given = List.sort compare (List.map fst pins) in
  if expected <> given then
    Slc_obs.Slc_error.invalid_input ~site:"Sdag.gate"
      (Printf.sprintf "%s needs pins {%s}, got {%s}" cell.Cells.name
         (String.concat "," expected)
         (String.concat "," given));
  List.iter (fun (_, n) -> check_net t n) pins;
  let idx = t.n_gates in
  let out = fresh_net t name (`Gate idx) in
  t.gates <- { cell; pins; out } :: t.gates;
  t.n_gates <- t.n_gates + 1;
  if wire_cap > 0.0 then Hashtbl.replace t.loads out wire_cap;
  out

let set_load t net load =
  check_net t net;
  if load < 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Sdag.set_load" "negative load";
  Hashtbl.replace t.loads net
    (load +. Option.value ~default:0.0 (Hashtbl.find_opt t.loads net))

let net_name t n =
  check_net t n;
  fst (List.nth (List.rev t.nets) n)

(* Total capacitance on a net: explicit loads plus the gate caps of all
   fanout pins. *)
let net_cap t net =
  let explicit = Option.value ~default:0.0 (Hashtbl.find_opt t.loads net) in
  let fanin_caps =
    List.fold_left
      (fun acc g ->
        List.fold_left
          (fun acc (pin, n) ->
            if n = net then
              acc +. Equivalent.input_cap t.tech g.cell ~pin
            else acc)
          acc g.pins)
      0.0 (List.rev t.gates)
  in
  explicit +. fanin_caps

type edge_arrival = { at : float; slew : float }

type arrival = { rise : edge_arrival option; fall : edge_arrival option }

let none = { rise = None; fall = None }

let at_edge a ~rises = if rises then a.rise else a.fall

let input_edge ~at ~slew ~rises =
  let e = Some { at; slew } in
  if rises then { rise = e; fall = None } else { none with fall = e }

let later a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> if x.at >= y.at then Some x else Some y

(* Shared forward pass: arrivals for every net plus, per gate, the
   candidate (pin, out_edge, delay, chosen input edge arrival time)
   tuples actually used — needed by the backward required-time pass.

   Queries are memoized: by default through a fresh exact per-pass
   cache (fanout nets re-query the same (arc, slew, load, vdd) once per
   sibling), or through a caller-supplied [?cache] that persists across
   passes. *)
let forward ?cache t (oracle : Oracle.t) ~input_arrivals =
  let oracle =
    match cache with
    | Some c -> Oracle.cached c oracle
    | None -> Oracle.cached (Oracle.make_cache ()) oracle
  in
  let arrivals = Array.make t.n_nets none in
  let origins = Array.of_list (List.rev t.nets) in
  let gates = Array.of_list (List.rev t.gates) in
  let used = Array.make (Array.length gates) [] in
  for n = 0 to t.n_nets - 1 do
    match snd origins.(n) with
    | `Input -> arrivals.(n) <- input_arrivals (fst origins.(n))
    | `Gate gi ->
      let g = gates.(gi) in
      let cload = net_cap t g.out in
      let candidate_out out_dir =
        let input_rises =
          match out_dir with Arc.Fall -> true | Arc.Rise -> false
        in
        List.fold_left
          (fun best (pin, driver) ->
            match at_edge arrivals.(driver) ~rises:input_rises with
            | None -> best
            | Some e -> (
              match Arc.find g.cell ~pin ~out_dir with
              | exception Not_found -> best
              | arc ->
                let point = { Harness.sin = e.slew; cload; vdd = t.vdd } in
                let d, s = oracle.Oracle.query arc point in
                used.(gi) <- (driver, input_rises, out_dir, d) :: used.(gi);
                later best (Some { at = e.at +. d; slew = s })))
          None g.pins
      in
      arrivals.(n) <-
        { rise = candidate_out Arc.Rise; fall = candidate_out Arc.Fall }
  done;
  (arrivals, origins, gates, used)

let analyze ?cache t (oracle : Oracle.t) ~input_arrivals target =
  check_net t target;
  let arrivals, _, _, _ = forward ?cache t oracle ~input_arrivals in
  arrivals.(target)

type slack_row = {
  net_label : string;
  arrival_time : float;
  required_time : float;
  slack : float;
}

let worst_arrival a =
  match (a.rise, a.fall) with
  | None, None -> None
  | Some e, None | None, Some e -> Some e.at
  | Some r, Some f -> Some (Float.max r.at f.at)

let slack_report ?cache t oracle ~input_arrivals ~outputs =
  List.iter (fun (n, _) -> check_net t n) outputs;
  let arrivals, origins, gates, used =
    forward ?cache t oracle ~input_arrivals
  in
  let required = Array.make t.n_nets Float.infinity in
  List.iter
    (fun (n, r) -> required.(n) <- Float.min required.(n) r)
    outputs;
  (* Backward over gates in reverse construction (reverse topological)
     order: a driver must arrive early enough for every timing arc it
     launches. *)
  for gi = Array.length gates - 1 downto 0 do
    let g = gates.(gi) in
    let r_out = required.(g.out) in
    if r_out < Float.infinity then
      List.iter
        (fun (driver, _input_rises, _out_dir, d) ->
          required.(driver) <- Float.min required.(driver) (r_out -. d))
        used.(gi)
  done;
  let rows = ref [] in
  for n = 0 to t.n_nets - 1 do
    match worst_arrival arrivals.(n) with
    | None -> ()
    | Some at ->
      rows :=
        {
          net_label = fst origins.(n);
          arrival_time = at;
          required_time = required.(n);
          slack = required.(n) -. at;
        }
        :: !rows
  done;
  List.sort (fun a b -> compare a.slack b.slack) !rows
