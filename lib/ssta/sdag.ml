module Arc = Slc_cell.Arc
module Cells = Slc_cell.Cells
module Equivalent = Slc_cell.Equivalent
module Harness = Slc_cell.Harness
module Tech = Slc_device.Tech
module Parallel = Slc_num.Parallel

type net = int

type gate_inst = {
  cell : Cells.t;
  pins : (string * net) list;
  out : net;
}

(* Builder: growable arrays instead of reversed lists, so net-name
   lookup is O(1) and nothing is re-materialized per query.  Net
   capacitance is accumulated incrementally as gates are added — each
   new fanout pin adds its gate cap to its driver net, in exactly the
   construction-order summation the historical per-query rescan
   performed, so totals are bitwise identical. *)
type t = {
  tech : Tech.t;
  vdd : float;
  mutable names : string array; (* per net; n_nets entries live *)
  mutable origins : int array; (* per net: -1 = input, else gate index *)
  mutable caps : float array; (* per net: summed fanout pin gate caps *)
  mutable n_nets : int;
  mutable gates : gate_inst array; (* n_gates entries live *)
  mutable n_gates : int;
  loads : (net, float) Hashtbl.t;
}

let dummy_gate = { cell = Cells.inv; pins = []; out = -1 }

let create tech ~vdd =
  if vdd <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Sdag.create" "vdd must be > 0";
  {
    tech;
    vdd;
    names = Array.make 16 "";
    origins = Array.make 16 (-1);
    caps = Array.make 16 0.0;
    n_nets = 0;
    gates = Array.make 16 dummy_gate;
    n_gates = 0;
    loads = Hashtbl.create 8;
  }

let grow_net t =
  if t.n_nets = Array.length t.names then begin
    let cap = 2 * Array.length t.names in
    let names = Array.make cap "" in
    Array.blit t.names 0 names 0 t.n_nets;
    t.names <- names;
    let origins = Array.make cap (-1) in
    Array.blit t.origins 0 origins 0 t.n_nets;
    t.origins <- origins;
    let caps = Array.make cap 0.0 in
    Array.blit t.caps 0 caps 0 t.n_nets;
    t.caps <- caps
  end

let fresh_net t name origin =
  grow_net t;
  let id = t.n_nets in
  t.names.(id) <- name;
  t.origins.(id) <- origin;
  t.caps.(id) <- 0.0;
  t.n_nets <- t.n_nets + 1;
  id

let input t name = fresh_net t name (-1)

let check_net t n =
  if n < 0 || n >= t.n_nets then Slc_obs.Slc_error.invalid_input ~site:"Sdag" "unknown net"

let gate t cell ~pins ?(wire_cap = 0.0) name =
  let expected = List.sort compare cell.Cells.inputs in
  let given = List.sort compare (List.map fst pins) in
  if expected <> given then
    Slc_obs.Slc_error.invalid_input ~site:"Sdag.gate"
      (Printf.sprintf "%s needs pins {%s}, got {%s}" cell.Cells.name
         (String.concat "," expected)
         (String.concat "," given));
  List.iter (fun (_, n) -> check_net t n) pins;
  let idx = t.n_gates in
  let out = fresh_net t name idx in
  if t.n_gates = Array.length t.gates then begin
    let gates = Array.make (2 * Array.length t.gates) dummy_gate in
    Array.blit t.gates 0 gates 0 t.n_gates;
    t.gates <- gates
  end;
  t.gates.(idx) <- { cell; pins; out };
  t.n_gates <- t.n_gates + 1;
  (* Accumulate fanout pin caps onto the driver nets, in pin-list order
     — the same order (and therefore the same floating-point sum) as
     the historical whole-graph rescan. *)
  List.iter
    (fun (pin, n) ->
      t.caps.(n) <- t.caps.(n) +. Equivalent.input_cap_cached t.tech cell ~pin)
    pins;
  if wire_cap > 0.0 then Hashtbl.replace t.loads out wire_cap;
  out

let set_load t net load =
  check_net t net;
  if load < 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Sdag.set_load" "negative load";
  Hashtbl.replace t.loads net
    (load +. Option.value ~default:0.0 (Hashtbl.find_opt t.loads net))

let net_name t n =
  check_net t n;
  t.names.(n)

(* Total capacitance on a net: explicit loads plus the accumulated gate
   caps of all fanout pins. *)
let net_cap t net =
  let explicit = Option.value ~default:0.0 (Hashtbl.find_opt t.loads net) in
  explicit +. t.caps.(net)

type edge_arrival = { at : float; slew : float }

type arrival = { rise : edge_arrival option; fall : edge_arrival option }

let none = { rise = None; fall = None }

let at_edge a ~rises = if rises then a.rise else a.fall

let input_edge ~at ~slew ~rises =
  let e = Some { at; slew } in
  if rises then { rise = e; fall = None } else { none with fall = e }

let later a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some x, Some y -> if x.at >= y.at then Some x else Some y

(* ------------------------------------------------------------------ *)
(* Compiled graph: an immutable, int-indexed snapshot of the DAG built
   once per analysis batch.  Pins are arrays, timing-arc candidates are
   resolved up front (one [Arc.find] per distinct (cell, pin, edge)
   instead of one per gate evaluation), net capacitance is frozen per
   gate output, and gates are grouped into ASAP levels: every gate in a
   level depends only on nets produced by strictly earlier levels, so a
   level's gates can be evaluated in parallel. *)

type cgate = {
  c_cell : Cells.t;
  c_pins : (string * net) array;
  c_rise : Arc.t option array; (* per pin: arc producing a rising output *)
  c_fall : Arc.t option array; (* per pin: arc producing a falling output *)
  c_out : net;
  c_load : float; (* total capacitance on [c_out] *)
}

type compiled = {
  k_vdd : float;
  k_names : string array;
  k_origins : int array; (* -1 = primary input, else gate index *)
  k_gates : cgate array;
  k_levels : int array array; (* gate indices grouped by ASAP level *)
}

let compile t =
  let n_nets = t.n_nets and n_gates = t.n_gates in
  let names = Array.sub t.names 0 n_nets in
  let origins = Array.sub t.origins 0 n_nets in
  (* Arc resolution memo: a netlist instantiates few distinct cells, so
     resolve each (cell, pin, direction) once. *)
  let arcs : (string * string * Arc.direction, Arc.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  let resolve (cell : Cells.t) pin out_dir =
    let key = (cell.Cells.name, pin, out_dir) in
    match Hashtbl.find_opt arcs key with
    | Some r -> r
    | None ->
      let r =
        match Arc.find cell ~pin ~out_dir with
        | exception Not_found -> None
        | arc -> Some arc
      in
      Hashtbl.add arcs key r;
      r
  in
  let gates =
    Array.init n_gates (fun gi ->
        let g = t.gates.(gi) in
        let pins = Array.of_list g.pins in
        {
          c_cell = g.cell;
          c_pins = pins;
          c_rise = Array.map (fun (pin, _) -> resolve g.cell pin Arc.Rise) pins;
          c_fall = Array.map (fun (pin, _) -> resolve g.cell pin Arc.Fall) pins;
          c_out = g.out;
          c_load = net_cap t g.out;
        })
  in
  (* ASAP levelization: a gate's level is 1 + the deepest level among
     its driver nets (primary inputs sit at level 0).  Construction
     order is topological, so one forward sweep suffices. *)
  let net_level = Array.make n_nets 0 in
  let gate_level = Array.make n_gates 0 in
  let max_level = ref 0 in
  for gi = 0 to n_gates - 1 do
    let g = gates.(gi) in
    let deepest = ref 0 in
    Array.iter
      (fun (_, n) -> if net_level.(n) > !deepest then deepest := net_level.(n))
      g.c_pins;
    let lvl = !deepest + 1 in
    gate_level.(gi) <- lvl;
    net_level.(g.c_out) <- lvl;
    if lvl > !max_level then max_level := lvl
  done;
  let widths = Array.make (!max_level + 1) 0 in
  Array.iter (fun lvl -> widths.(lvl) <- widths.(lvl) + 1) gate_level;
  let levels = Array.init (!max_level + 1) (fun lvl -> Array.make widths.(lvl) 0) in
  let filled = Array.make (!max_level + 1) 0 in
  for gi = 0 to n_gates - 1 do
    let lvl = gate_level.(gi) in
    levels.(lvl).(filled.(lvl)) <- gi;
    filled.(lvl) <- filled.(lvl) + 1
  done;
  (* Level 0 holds no gates; drop it so traversal touches gates only. *)
  let levels =
    if Array.length levels > 0 then Array.sub levels 1 (Array.length levels - 1)
    else levels
  in
  { k_vdd = t.vdd; k_names = names; k_origins = origins; k_gates = gates;
    k_levels = levels }

let compiled_nets k = Array.length k.k_names

let compiled_gates k = Array.length k.k_gates

let level_widths k = Array.map Array.length k.k_levels

let check_compiled_net k n =
  if n < 0 || n >= Array.length k.k_names then
    Slc_obs.Slc_error.invalid_input ~site:"Sdag" "unknown net"

(* Shared forward pass over the compiled graph: arrivals for every net
   plus, per gate, the candidate (driver, in_edge, out_edge, delay)
   tuples actually used — needed by the backward required-time pass.

   Gates within a level are evaluated in parallel over the domain pool
   (each gate writes only its own output-net arrival slot and its own
   [used] slot, so slots never race).  Oracle queries are pure and
   memoized first-publication-wins, so arrivals, [used] contents and
   every downstream row are bitwise independent of the domain count and
   identical to a sequential evaluation.

   Queries are memoized: by default through a fresh exact per-pass
   cache (fanout nets re-query the same (arc, slew, load, vdd) once per
   sibling), or through a caller-supplied [?cache] that persists across
   passes. *)
let forward_compiled ?cache ?domains k (oracle : Oracle.t) ~input_arrivals =
  let oracle =
    match cache with
    | Some c -> Oracle.cached c oracle
    | None -> Oracle.cached (Oracle.make_cache ()) oracle
  in
  let n_nets = Array.length k.k_names in
  let arrivals = Array.make n_nets none in
  for n = 0 to n_nets - 1 do
    if k.k_origins.(n) < 0 then arrivals.(n) <- input_arrivals k.k_names.(n)
  done;
  let gates = k.k_gates in
  let used = Array.make (Array.length gates) [] in
  let eval gi =
    let g = gates.(gi) in
    let cload = g.c_load in
    let entries = ref [] in
    let candidate_out arcs out_dir =
      let input_rises =
        match out_dir with Arc.Fall -> true | Arc.Rise -> false
      in
      let best = ref None in
      Array.iteri
        (fun pi (_, driver) ->
          match at_edge arrivals.(driver) ~rises:input_rises with
          | None -> ()
          | Some e -> (
            match arcs.(pi) with
            | None -> ()
            | Some arc ->
              let point = { Harness.sin = e.slew; cload; vdd = k.k_vdd } in
              let d, s = oracle.Oracle.query arc point in
              entries := (driver, input_rises, out_dir, d) :: !entries;
              best := later !best (Some { at = e.at +. d; slew = s })))
        g.c_pins;
      !best
    in
    let rise = candidate_out g.c_rise Arc.Rise in
    let fall = candidate_out g.c_fall Arc.Fall in
    arrivals.(g.c_out) <- { rise; fall };
    used.(gi) <- !entries
  in
  Array.iter
    (fun level ->
      if Array.length level < 2 then Array.iter eval level
      else ignore (Parallel.map ?domains eval level))
    k.k_levels;
  (arrivals, used)

let analyze_compiled ?cache ?domains k (oracle : Oracle.t) ~input_arrivals
    target =
  check_compiled_net k target;
  let arrivals, _ = forward_compiled ?cache ?domains k oracle ~input_arrivals in
  arrivals.(target)

let analyze ?cache ?domains t oracle ~input_arrivals target =
  check_net t target;
  analyze_compiled ?cache ?domains (compile t) oracle ~input_arrivals target

type slack_row = {
  net_label : string;
  arrival_time : float;
  required_time : float;
  slack : float;
}

let worst_arrival a =
  match (a.rise, a.fall) with
  | None, None -> None
  | Some e, None | None, Some e -> Some e.at
  | Some r, Some f -> Some (Float.max r.at f.at)

let slack_report_compiled ?cache ?domains k oracle ~input_arrivals ~outputs =
  List.iter (fun (n, _) -> check_compiled_net k n) outputs;
  let arrivals, used =
    forward_compiled ?cache ?domains k oracle ~input_arrivals
  in
  let n_nets = Array.length k.k_names in
  let required = Array.make n_nets Float.infinity in
  List.iter (fun (n, r) -> required.(n) <- Float.min required.(n) r) outputs;
  (* Backward over gates in reverse construction (reverse topological)
     order: a driver must arrive early enough for every timing arc it
     launches.  [Float.min] over a gate's used candidates is
     order-insensitive, so the rows match the sequential reference no
     matter how the forward pass was scheduled. *)
  let gates = k.k_gates in
  for gi = Array.length gates - 1 downto 0 do
    let g = gates.(gi) in
    let r_out = required.(g.c_out) in
    if r_out < Float.infinity then
      List.iter
        (fun (driver, _input_rises, _out_dir, d) ->
          required.(driver) <- Float.min required.(driver) (r_out -. d))
        used.(gi)
  done;
  let rows = ref [] in
  for n = 0 to n_nets - 1 do
    match worst_arrival arrivals.(n) with
    | None -> ()
    | Some at ->
      rows :=
        {
          net_label = k.k_names.(n);
          arrival_time = at;
          required_time = required.(n);
          slack = required.(n) -. at;
        }
        :: !rows
  done;
  List.sort (fun a b -> compare a.slack b.slack) !rows

let slack_report ?cache ?domains t oracle ~input_arrivals ~outputs =
  List.iter (fun (n, _) -> check_net t n) outputs;
  slack_report_compiled ?cache ?domains (compile t) oracle ~input_arrivals
    ~outputs
