(** Deterministic random gate-level designs for large-graph SSTA
    benchmarking and testing.

    Designs are layered random DAGs over a configurable cell set
    (default INV/NAND2/NOR2): each gate draws its cell, its driver nets
    (uniformly over everything built so far, which yields wide, shallow
    graphs with a skewed fanout distribution) and an exponentially
    distributed wire load from a per-gate {!Slc_prob.Rng.split_ix}
    sub-stream.  The same [seed]/[gates] always reproduces the same
    netlist, bit for bit, on any machine. *)

type design = {
  dag : Sdag.t;  (** the mutable builder (already fully built) *)
  inputs : Sdag.net array;  (** primary inputs, in creation order *)
  outputs : Sdag.net array;
      (** zero-fanout gate outputs, each given the generator's output
          load; in net order *)
  compiled : Sdag.compiled;
      (** the design compiled once, after all loads were placed *)
}

val default_cells : Slc_cell.Cells.t array
(** INV, NAND2, NOR2 — the paper's Table-I set. *)

val design :
  ?inputs:int ->
  ?cells:Slc_cell.Cells.t array ->
  ?mean_wire_cap:float ->
  ?out_load:float ->
  Slc_device.Tech.t ->
  vdd:float ->
  seed:int ->
  gates:int ->
  design
(** [design tech ~vdd ~seed ~gates] builds a random design with
    [gates] gates over [?inputs] (default 32) primary inputs.
    [?mean_wire_cap] (farads, default 0.5 fF) sets the exponential
    wire-load mean; [?out_load] (default 2 fF) is placed on every
    primary output.  Raises through {!Slc_obs.Slc_error} on
    non-positive sizes or a negative wire-cap mean. *)

val wire_cap_draw : Slc_prob.Rng.t -> mean:float -> float
(** One wire-load draw: exponentially distributed with the given mean,
    always finite — the uniform draw behind it is clamped into (0, 1]
    so a generator returning its upper endpoint can never produce
    [log 0.0 = -inf] (an infinite cap would poison every downstream
    arrival).  Exposed for the regression test pinning that bound. *)

val both_edges : at:float -> slew:float -> Sdag.arrival
(** An arrival with identical rising and falling edges — the usual
    primary-input condition for whole-design passes. *)

val required : design -> float -> (Sdag.net * float) list
(** All primary outputs constrained to one required time — the
    [~outputs] argument for {!Sdag.slack_report_compiled}. *)
