(** Statistical-characterization experiments: paper Figs. 7, 8 and 9
    (28-nm statistical example). *)

type stat_curve = {
  budgets : int array;
  e_mu_td : float array;
  e_sigma_td : float array;
  e_mu_sout : float array;
  e_sigma_sout : float array;
}

type fig78_result = {
  tech_name : string;
  arc_names : string list;
  n_points : int;
  n_seeds : int;
  baseline_cost : int;
  bayes : stat_curve;
  lse : stat_curve;
  lut : stat_curve;
  (* Iso-accuracy speedups vs the Bayes elbow (the paper quotes 17x for
     µ(Td), 20x for σ(Td), 18x/19x for Sout): *)
  speedup_mu_td : Char_flow.reach;
  speedup_sigma_td : Char_flow.reach;
  speedup_mu_sout : Char_flow.reach;
  speedup_sigma_sout : Char_flow.reach;
}

val fig78 :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?arcs:Slc_cell.Arc.t list ->
  ?prior:Prior.pair ->
  unit ->
  fig78_result
(** Statistical errors (Eqs. 16–19, relative) versus per-seed training
    budget for the three methods, averaged over the given arcs (default:
    one representative arc each of INV, NAND2, NOR2). *)

val print_fig78 : Format.formatter -> fig78_result -> unit

(** {2 Adaptive-budget experiment (active-learning design)} *)

type adaptive_budget_result = {
  ab_tech_name : string;
  ab_arc_names : string list;
  ab_n_points : int;
  ab_n_seeds : int;
  ab_budgets : int array;  (** the common budget sweep (k >= 2) *)
  ab_random : stat_curve;
  ab_adaptive : stat_curve;
  ab_random_sims : int array;
      (** simulator runs spent by the random design at each budget,
          summed over arcs *)
  ab_adaptive_sims : int array;  (** same, for the adaptive design *)
  ab_reference_budget : int;
      (** the accuracy target: the largest random budget whose
          worst-of-four error the adaptive design attains with strictly
          fewer simulations (falls back to the largest budget in the
          sweep when no budget admits strict savings) *)
  ab_reference_error : float;
      (** the random design's worst-of-four error at that budget *)
  ab_match_budget : int option;
      (** smallest adaptive budget whose worst-of-four error is at or
          below [ab_reference_error]; [None] if never reached *)
  ab_match_sims : int option;
      (** simulator runs the adaptive design spent at [ab_match_budget] *)
  ab_sims_saved : int option;
      (** [random sims at the reference budget - ab_match_sims] *)
  ab_gpr_fallbacks : int;
      (** GPR fallback activations during the adaptive sweep (0 when
          telemetry is disabled) *)
}

val adaptive_budget :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?arcs:Slc_cell.Arc.t list ->
  ?prior:Prior.pair ->
  unit ->
  adaptive_budget_result
(** Paired comparison of {!Statistical.Random_per_seed} against
    {!Statistical.Adaptive} (information-gain sequential design with
    GPR fallback) over the budget sweep [config.ks_stat] restricted to
    budgets >= 2.  Both designs draw from generators created in the
    same state, so each adaptive run's candidate pool is sampled from
    the distribution the random design draws its points from.  The
    headline number is how many simulator runs the adaptive design
    saves while matching the random design's worst statistical error
    at its largest budget — the active-learning analogue of the
    paper's Figs. 7–8 simulation-count claims. *)

val print_adaptive_budget : Format.formatter -> adaptive_budget_result -> unit

type fig9_result = {
  point : Input_space.point;
  arc_name : string;
  n_seeds : int;
  k_bayes : int;
  lut_points : int;
  grid : float array;          (** delay axis for the densities, s *)
  pdf_baseline : float array;
  pdf_bayes : float array;
  pdf_lut : float array;
  baseline_skewness : float;
  bayes_skewness : float;
  lut_skewness : float;
  ks_bayes : float;            (** KS distance to the MC baseline *)
  ks_lut : float;
  cost_baseline : int;
  cost_bayes : int;
  cost_lut : int;
}

val fig9 :
  ?config:Config.t ->
  ?tech:Slc_device.Tech.t ->
  ?arc:Slc_cell.Arc.t ->
  ?point:Input_space.point ->
  ?prior:Prior.pair ->
  unit ->
  fig9_result
(** Delay probability density at one low-Vdd condition (default: the
    paper's Vdd=0.734 V, Sin=5.09 ps, Cload=1.67 fF) for the MC
    baseline, the proposed method with 7 fitting conditions, and a
    60-point LUT. *)

val print_fig9 : Format.formatter -> fig9_result -> unit
