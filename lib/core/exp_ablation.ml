module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Describe = Slc_prob.Describe

type row = { variant : string; k : int; td_err : float }

(* Validation baselines are expensive (arcs x points simulations) and
   identical across ablation variants; build them once per (config,
   tech) and reuse. *)
let[@slc.domain_safe "guarded by baseline_cache_lock"] baseline_cache :
    (string * int * int, Char_flow.dataset list) Hashtbl.t =
  Hashtbl.create 4

let baseline_cache_lock = Mutex.create ()

let baselines_for ~config ~tech =
  let n = max 30 (config.Config.n_validation / 3) in
  let key = (tech.Tech.name, n, config.Config.rng_seed) in
  let hit =
    Mutex.lock baseline_cache_lock;
    let h = Hashtbl.find_opt baseline_cache key in
    Mutex.unlock baseline_cache_lock;
    h
  in
  match hit with
  | Some b -> b
  | None ->
    let arcs = List.concat_map Arc.all_of_cell Cells.paper_set in
    let points =
      Input_space.validation_set ~n ~seed:config.Config.rng_seed tech
    in
    (* Simulate outside the lock (minutes of work); a racing duplicate
       build is wasteful but correct, and the replace is idempotent. *)
    let b =
      List.map (fun arc -> Char_flow.simulate_dataset tech arc points) arcs
    in
    Mutex.lock baseline_cache_lock;
    Hashtbl.replace baseline_cache key b;
    Mutex.unlock baseline_cache_lock;
    b

let eval_train ~config ~tech ~train ~ks =
  let baselines = baselines_for ~config ~tech in
  List.map
    (fun k ->
      let errs =
        List.map
          (fun ds ->
            let p = train ds.Char_flow.arc ~k in
            (Char_flow.evaluate p ds).Char_flow.td_err)
          baselines
      in
      (k, Describe.mean (Array.of_list errs)))
    ks

let eval_prior ~config ~tech ~(prior : Prior.pair) ~ks =
  eval_train ~config ~tech ~ks ~train:(fun arc ~k ->
      Char_flow.train_bayes ~prior tech arc ~k)

let rows_of variant evals =
  List.map (fun (k, e) -> { variant; k; td_err = e }) evals

let small_ks (config : Config.t) =
  List.filter (fun k -> k <= 5) config.Config.ks
  |> function [] -> [ 2; 3 ] | l -> l

let ablation_beta ?(config = Config.default ()) ?(tech = Tech.n14) ?prior () =
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  let const =
    {
      Prior.delay = Prior.constant_beta prior.Prior.delay;
      slew = Prior.constant_beta prior.Prior.slew;
    }
  in
  let ks = small_ks config in
  rows_of "learned beta(xi)" (eval_prior ~config ~tech ~prior ~ks)
  @ rows_of "constant beta" (eval_prior ~config ~tech ~prior:const ~ks)

let ablation_history ?(config = Config.default ()) ?(tech = Tech.n14) () =
  let similar = [ Tech.n20; Tech.n28 ] in
  let dissimilar = [ Tech.n40; Tech.n45 ] in
  let all = Tech.historical_for tech in
  let ks = small_ks config in
  let variant name historical =
    let prior = Prior.learn_pair ~historical () in
    rows_of name (eval_prior ~config ~tech ~prior ~ks)
  in
  variant "similar nodes (n20,n28)" similar
  @ variant "all five nodes" all
  @ variant "dissimilar nodes (n40,n45)" dissimilar

let ablation_design ?(config = Config.default ()) ?(tech = Tech.n14) ?prior
    ?(n_draws = 5) () =
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  let ks = small_ks config in
  let curated_bayes =
    eval_train ~config ~tech ~ks ~train:(fun arc ~k ->
        Char_flow.train_bayes ~prior tech arc ~k)
  in
  let curated_lse =
    eval_train ~config ~tech ~ks ~train:(fun arc ~k ->
        Char_flow.train_lse tech arc ~k)
  in
  (* Random designs: average the error over independent draws. *)
  let random train_with =
    List.map
      (fun k ->
        let per_draw =
          List.init n_draws (fun d ->
              let evals =
                eval_train ~config ~tech ~ks:[ k ]
                  ~train:(fun arc ~k ->
                    let points =
                      Input_space.random_fitting_points tech ~k
                        ~seed:((1000 * d) + k)
                    in
                    train_with ~points arc ~k)
              in
              match evals with [ (_, e) ] -> e | _ -> assert false)
        in
        (k, Describe.mean (Array.of_list per_draw)))
      ks
  in
  let random_bayes =
    random (fun ~points arc ~k -> Char_flow.train_bayes ~points ~prior tech arc ~k)
  in
  let random_lse =
    random (fun ~points arc ~k -> Char_flow.train_lse ~points tech arc ~k)
  in
  rows_of "curated design, bayes" curated_bayes
  @ rows_of "curated design, lse" curated_lse
  @ rows_of "random design, bayes" random_bayes
  @ rows_of "random design, lse" random_lse

type complexity_row = { cell : string; err4 : float; err5 : float }

let ablation_model_complexity ?(tech = Tech.n14) () =
  let module Harness = Slc_cell.Harness in
  let module Equivalent = Slc_cell.Equivalent in
  List.map
    (fun cell ->
      let arc = Arc.find cell ~pin:"A" ~out_dir:Arc.Fall in
      let unit_points = Input_space.unit_grid ~levels:[| 4; 4; 3 |] in
      let points = Array.map (Input_space.denormalize tech) unit_points in
      let eq = Equivalent.of_arc tech arc in
      let obs =
        Array.map
          (fun (p : Harness.point) ->
            let m = Harness.simulate tech arc p in
            {
              Extract_lse.point = p;
              ieff = Equivalent.ieff eq ~vdd:p.Harness.vdd;
              value = m.Harness.td;
            })
          points
      in
      let p4 = Extract_lse.fit obs in
      let p5 = Model_ext.fit ~init:(Model_ext.of_base p4) obs in
      {
        cell = cell.Cells.name;
        err4 = Extract_lse.avg_abs_rel_error p4 obs;
        err5 = Model_ext.avg_abs_rel_error p5 obs;
      })
    Cells.paper_set

let print_complexity ppf rows =
  Format.fprintf ppf "Ablation: model complexity (4 vs 5 parameters)@.";
  Report.table ppf
    ~header:[ "cell"; "4-param err"; "+Sin*Cload err" ]
    (List.map
       (fun r -> [ r.cell; Report.pct r.err4; Report.pct r.err5 ])
       rows)

type sampling_row = {
  estimator : string;
  mean_ratio : float;
  rep_sd : float;
}

let ablation_sampling ?(tech = Tech.n28) ?(n_seeds = 40) ?(n_reps = 6) () =
  let module Process = Slc_device.Process in
  let module Rng = Slc_prob.Rng in
  let arc = Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall in
  let points =
    [|
      { Slc_cell.Harness.sin = 5e-12; cload = 2e-15; vdd = 0.75 };
      { Slc_cell.Harness.sin = 10e-12; cload = 5e-15; vdd = 0.9 };
      { Slc_cell.Harness.sin = 3e-12; cload = 1e-15; vdd = 1.0 };
    |]
  in
  let stats_with seeds pt =
    let samples =
      Array.map
        (fun seed ->
          (Slc_cell.Harness.simulate ~seed tech arc pt).Slc_cell.Harness.td)
        seeds
    in
    (Describe.mean samples, Describe.std samples)
  in

  (* Large-sample bias reference. *)
  let ref_rng = Rng.create 424242 in
  let ref_seeds = Process.sample_batch ref_rng tech (10 * n_seeds) in
  let ref_stats = Array.map (stats_with ref_seeds) points in
  (* One simulation sweep per (estimator, rep, point) yields both the
     mean and sigma ratios. *)
  let evaluate batch_of =
    let mu_ratios = ref [] and sg_ratios = ref [] in
    for rep = 1 to n_reps do
      let seeds = batch_of rep in
      Array.iteri
        (fun i pt ->
          let mu, sg = stats_with seeds pt in
          let mu_ref, sg_ref = ref_stats.(i) in
          mu_ratios := (mu /. mu_ref) :: !mu_ratios;
          sg_ratios := (sg /. sg_ref) :: !sg_ratios)
        points
    done;
    let stats l =
      let a = Array.of_list l in
      (Describe.mean a, Describe.std a)
    in
    (stats !mu_ratios, stats !sg_ratios)
  in
  let mc rep = Process.sample_batch (Rng.create rep) tech n_seeds in
  let lhs rep = Process.sample_batch_lhs (Rng.create rep) tech n_seeds in
  let (mc_mu, mc_mu_sd), (mc_sg, mc_sg_sd) = evaluate mc in
  let (lhs_mu, lhs_mu_sd), (lhs_sg, lhs_sg_sd) = evaluate lhs in
  [
    { estimator = "mu(Td), monte carlo"; mean_ratio = mc_mu; rep_sd = mc_mu_sd };
    { estimator = "mu(Td), latin hypercube"; mean_ratio = lhs_mu; rep_sd = lhs_mu_sd };
    { estimator = "sigma(Td), monte carlo"; mean_ratio = mc_sg; rep_sd = mc_sg_sd };
    { estimator = "sigma(Td), latin hypercube"; mean_ratio = lhs_sg; rep_sd = lhs_sg_sd };
  ]

let print_sampling ppf rows =
  Format.fprintf ppf "Ablation: process-sampling estimators for Td statistics@.";
  Report.table ppf
    ~header:[ "estimator"; "mean ratio vs reference"; "rep-to-rep sd" ]
    (List.map
       (fun r ->
         [
           r.estimator;
           Printf.sprintf "%.3f" r.mean_ratio;
           Report.pct r.rep_sd;
         ])
       rows)

let ablation_chain ?(config = Config.default ()) ?(tech = Tech.n14) ?prior ()
    =
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  (* Oldest to newest among the historical nodes. *)
  let ordered =
    List.filter_map
      (fun t ->
        if String.equal t.Tech.name tech.Tech.name then None
        else Some t.Tech.name)
      (List.rev Tech.all)
  in
  let chained =
    {
      Prior.delay = Belief.chain_prior prior.Prior.delay ~ordered;
      slew = Belief.chain_prior prior.Prior.slew ~ordered;
    }
  in
  let ks = small_ks config in
  rows_of "pooled prior" (eval_prior ~config ~tech ~prior ~ks)
  @ rows_of "belief-chain prior" (eval_prior ~config ~tech ~prior:chained ~ks)

let print_rows ppf ~title rows =
  Format.fprintf ppf "%s@." title;
  Report.table ppf
    ~header:[ "variant"; "k"; "Td error" ]
    (List.map
       (fun r -> [ r.variant; string_of_int r.k; Report.pct r.td_err ])
       rows)
