module Vec = Slc_num.Vec
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg

type hyper = { signal2 : float; noise2 : float; lengths : float array }

type model = {
  m_hyper : hyper;
  m_mean : float;
  m_points : Input_space.point array;
  m_targets : float array;
}

type t = {
  t_model : model;
  t_tech : Slc_device.Tech.t;
  t_xs : Vec.t array;  (* normalized training inputs *)
  t_chol : Mat.t;      (* lower Cholesky of K + noise2 I *)
  t_alpha : Vec.t;     (* (K + noise2 I)^-1 (y - mean) *)
}

let model t = t.t_model

(* Scratch buffers grown on demand; owned by one caller (one worker
   domain via [Parallel.Slot]), never shared. *)
type workspace = {
  mutable w_k : Mat.t;    (* n x n kernel assembly *)
  mutable w_b : Vec.t;    (* centered targets *)
  mutable w_y : Vec.t;    (* triangular-solve intermediate *)
  mutable w_ks : Vec.t;   (* k* cross-covariances *)
  mutable w_v : Vec.t;    (* L^-1 k* *)
}

let workspace () =
  {
    w_k = Mat.create 1 1;
    w_b = Vec.create 1;
    w_y = Vec.create 1;
    w_ks = Vec.create 1;
    w_v = Vec.create 1;
  }

(* The factorization buffers must match n exactly ([cholesky_into]
   factors the whole matrix); the predictive scratch only needs room
   for n and can keep slack. *)
let ensure_exact ws n =
  if Mat.rows ws.w_k <> n then begin
    ws.w_k <- Mat.create n n;
    ws.w_b <- Vec.create n;
    ws.w_y <- Vec.create n
  end

let ensure_scratch ws n =
  if Vec.dim ws.w_ks < n then begin
    ws.w_ks <- Vec.create n;
    ws.w_v <- Vec.create n
  end

let n_dims = 3

(* k(x, x') without the noise term; inputs are normalized vectors. *)
let kernel h (x : Vec.t) (x' : Vec.t) =
  let s = ref 0.0 in
  for d = 0 to n_dims - 1 do
    let dx = (x.(d) -. x'.(d)) /. h.lengths.(d) in
    s := !s +. (dx *. dx)
  done;
  h.signal2 *. exp (-0.5 *. !s)

let default_hyper tech points targets =
  let n = Array.length targets in
  if n = 0 || Array.length points <> n then
    Slc_obs.Slc_error.invalid_input ~site:"Gpr.default_hyper"
      "points/targets must be non-empty and of equal length";
  let xs = Array.map (Input_space.normalize tech) points in
  let lengths =
    Array.init n_dims (fun d ->
        let lo = ref infinity and hi = ref neg_infinity in
        Array.iter
          (fun (x : Vec.t) ->
            if x.(d) < !lo then lo := x.(d);
            if x.(d) > !hi then hi := x.(d))
          xs;
        Float.max 0.3 (0.75 *. (!hi -. !lo)))
  in
  let mean = Array.fold_left ( +. ) 0.0 targets /. float_of_int n in
  let var =
    Array.fold_left (fun acc y -> acc +. ((y -. mean) *. (y -. mean))) 0.0
      targets
    /. float_of_int n
  in
  let floor = 1e-10 *. mean *. mean in
  let signal2 =
    if var > floor then var else if floor > 0.0 then floor else 1.0
  in
  { signal2; noise2 = 1e-6 *. signal2; lengths }

let build ?workspace:ws tech m =
  let n = Array.length m.m_targets in
  if n = 0 || Array.length m.m_points <> n then
    Slc_obs.Slc_error.invalid_input ~site:"Gpr.fit"
      "points/targets must be non-empty and of equal length";
  let h = m.m_hyper in
  if Array.length h.lengths <> n_dims then
    Slc_obs.Slc_error.invalid_input ~site:"Gpr.fit"
      "hyper.lengths must have one entry per input dimension";
  let ws = match ws with Some ws -> ws | None -> workspace () in
  ensure_exact ws n;
  let xs = Array.map (Input_space.normalize tech) m.m_points in
  let k = ws.w_k in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let v = kernel h xs.(i) xs.(j) in
      let v = if i = j then v +. h.noise2 else v in
      Mat.set k i j v;
      Mat.set k j i v
    done
  done;
  (* The factor and dual weights outlive the workspace (they are the
     posterior), so they are owned by the result, not the scratch. *)
  let chol = Mat.create n n in
  Linalg.cholesky_into k chol;
  let alpha = Vec.create n in
  for i = 0 to n - 1 do
    ws.w_b.(i) <- m.m_targets.(i) -. m.m_mean
  done;
  Linalg.cholesky_solve_into chol ws.w_b ~y:ws.w_y ~x:alpha;
  { t_model = m; t_tech = tech; t_xs = xs; t_chol = chol; t_alpha = alpha }

let refit ?workspace tech m = build ?workspace tech m

let fit ?workspace ?hyper tech points targets =
  let h =
    match hyper with
    | Some h -> h
    | None -> default_hyper tech points targets
  in
  let n = Array.length targets in
  if n = 0 || Array.length points <> n then
    Slc_obs.Slc_error.invalid_input ~site:"Gpr.fit"
      "points/targets must be non-empty and of equal length";
  let mean = Array.fold_left ( +. ) 0.0 targets /. float_of_int n in
  build ?workspace tech
    {
      m_hyper = h;
      m_mean = mean;
      m_points = Array.copy points;
      m_targets = Array.copy targets;
    }

let cross ws t pt =
  let n = Array.length t.t_alpha in
  ensure_scratch ws n;
  let x = Input_space.normalize t.t_tech pt in
  for i = 0 to n - 1 do
    ws.w_ks.(i) <- kernel t.t_model.m_hyper x t.t_xs.(i)
  done;
  (x, n)

let predict ?workspace:ws t pt =
  let ws = match ws with Some ws -> ws | None -> workspace () in
  let _, n = cross ws t pt in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (ws.w_ks.(i) *. t.t_alpha.(i))
  done;
  t.t_model.m_mean +. !s

let predict_var ?workspace:ws t pt =
  let ws = match ws with Some ws -> ws | None -> workspace () in
  let x, n = cross ws t pt in
  (* v = L^-1 k* by forward substitution on the n x n factor. *)
  let l = t.t_chol and v = ws.w_v in
  for i = 0 to n - 1 do
    let s = ref ws.w_ks.(i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get l i j *. v.(j))
    done;
    v.(i) <- !s /. Mat.get l i i
  done;
  let explained = ref 0.0 in
  for i = 0 to n - 1 do
    explained := !explained +. (v.(i) *. v.(i))
  done;
  Float.max 0.0 (kernel t.t_model.m_hyper x x -. !explained)
