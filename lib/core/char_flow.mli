(** Nominal characterization flows and their cost accounting.

    Three methods answer "delay/slew at any input condition ξ" for one
    timing arc, each trained with a given budget of simulator runs:

    - {b Bayes}: the paper's method — k simulations, MAP extraction
      under the historical prior;
    - {b LSE}: the compact model fitted by plain least squares on the
      same k simulations (no prior);
    - {b LUT}: a conventional NLDM grid of ~budget points with
      trilinear interpolation.

    All methods are evaluated against a common simulated baseline
    dataset, with mean absolute relative error as in the paper. *)

type dataset = {
  arc : Slc_cell.Arc.t;
  points : Input_space.point array;
  td : float array;
  sout : float array;
  cost : int;  (** simulator runs spent building this dataset *)
}

val simulate_dataset :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Slc_cell.Arc.t ->
  Input_space.point array ->
  dataset

val observations_of_dataset :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  dataset ->
  metric:Prior.metric ->
  Extract_lse.observation array
(** Attaches per-condition [Ieff] (with the seed's global shifts) to the
    measured values. *)

(** The serializable substance behind a predictor: what must be
    persisted so another process can rebuild the same predictions
    without re-simulating.  The closures in {!predictor} are pure
    functions of this model (plus tech/arc/seed), so storing the model
    and rebuilding with {!predictor_of_model} reproduces every
    prediction bitwise. *)
type model =
  | Timing_pair of { td : Timing_model.params; sout : Timing_model.params }
      (** the paper's 4-parameter compact model, one fit per metric
          (Bayes/MAP and LSE flows) *)
  | Nldm_table of Slc_cell.Nldm.t  (** a conventional look-up table *)
  | Gpr_pair of { td : Gpr.model; sout : Gpr.model }
      (** nonparametric Gaussian-process fallback, one GP per metric —
          trained when the analytical form's residuals exceed a
          threshold (see {!with_gpr_fallback}); rebuilt bitwise from
          its stored training set by {!Gpr.refit} *)
  | Opaque
      (** not serializable (e.g. the RSM baseline); the persistent
          store refuses these *)

type predictor = {
  label : string;
  train_cost : int;  (** simulator runs spent training *)
  model : model;     (** the persistable parameters behind the closures *)
  predict_td : Input_space.point -> float;
  predict_sout : Input_space.point -> float;
}

val predictor_of_model :
  ?seed:Slc_device.Process.seed ->
  label:string ->
  train_cost:int ->
  Slc_device.Tech.t ->
  Slc_cell.Arc.t ->
  model ->
  predictor
(** Rebuilds a predictor from its persisted model.  The closures are
    constructed exactly as training would have built them, so for the
    same (model, tech, arc, seed) the predictions are bitwise identical
    to the original predictor's.  Raises [Invalid_argument] for
    {!Opaque}. *)

val train_bayes :
  ?seed:Slc_device.Process.seed ->
  ?points:Input_space.point array ->
  prior:Prior.pair ->
  Slc_device.Tech.t ->
  Slc_cell.Arc.t ->
  k:int ->
  predictor
(** [points] overrides the default curated fitting design (its length
    must then be [k]); used by the design ablation. *)

val train_bayes_on :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  ?seed:Slc_device.Process.seed ->
  prior:Prior.pair ->
  Slc_device.Tech.t ->
  dataset ->
  predictor
(** The fitting half of {!train_bayes} on an already-simulated dataset
    — lets callers batch the simulations of many seeds through one
    parallel map and then fit per seed, reusing a caller-owned LM
    [?workspace].  [train_cost] is the dataset's cost. *)

val train_lse :
  ?seed:Slc_device.Process.seed ->
  ?points:Input_space.point array ->
  Slc_device.Tech.t ->
  Slc_cell.Arc.t ->
  k:int ->
  predictor

val train_lse_on :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  dataset ->
  predictor
(** The fitting half of {!train_lse} on an already-simulated dataset;
    see {!train_bayes_on}. *)

val train_rsm :
  ?seed:Slc_device.Process.seed ->
  ?points:Input_space.point array ->
  Slc_device.Tech.t ->
  Slc_cell.Arc.t ->
  k:int ->
  predictor
(** Response-surface baseline: polynomial regression over normalized
    inputs fitted to the same [k] simulations the model methods use
    (degree adapts to [k]; see {!Rsm}). *)

val train_lut :
  ?seed:Slc_device.Process.seed ->
  Slc_device.Tech.t ->
  Slc_cell.Arc.t ->
  budget:int ->
  predictor
(** Builds the largest NLDM grid whose size does not exceed [budget];
    [train_cost] is the actual grid size. *)

val train_gpr_on :
  ?workspace:Gpr.workspace ->
  Slc_device.Tech.t ->
  dataset ->
  predictor
(** Nonparametric fallback: one exact-inference GP per metric
    ({!Gpr.fit} with data-driven hyperparameters) conditioned on the
    dataset.  Labelled ["model+gpr"].  Unlike the analytical trainers
    this needs no seed — the per-seed electrical behaviour is already
    baked into the measured targets. *)

type errors = { td_err : float; sout_err : float }
(** Mean absolute relative errors over a dataset. *)

val evaluate : predictor -> dataset -> errors

val default_gpr_threshold : float
(** Default residual threshold (mean |relative error| on the training
    set, [0.05]) above which the analytical fit is considered poor. *)

val with_gpr_fallback :
  ?workspace:Gpr.workspace ->
  threshold:float ->
  Slc_device.Tech.t ->
  dataset ->
  predictor ->
  predictor
(** [with_gpr_fallback ~threshold tech ds p] keeps [p] when it
    reproduces its own training dataset to within [threshold] (mean
    absolute relative error, worse of the two metrics), and otherwise
    replaces it with {!train_gpr_on} — the regime (break points,
    low-Vdd corners) where the 4-parameter form is structurally wrong
    and a nonparametric model earns its keep.  Increments the
    [gpr_fallbacks] telemetry counter when it switches. *)

val budget_to_reach :
  curve:(int * float) list -> target:float -> float option
(** Given (budget, error) pairs for one method, the (log-interpolated)
    budget at which the method first reaches [target] error; [None] if
    it never does.  Used for the paper's iso-accuracy speedup claims. *)

type reach =
  | Reached of float  (** iso-accuracy speedup factor *)
  | At_least of float (** the other method never reached the target
                          within its sweep; factor is a lower bound from
                          its largest budget *)

val speedup_vs :
  budget:float -> curve:(int * float) list -> target:float -> reach
(** Speedup of a method that achieves [target] error with [budget] runs
    over the method described by [curve]. *)

val pp_reach : Format.formatter -> reach -> unit
