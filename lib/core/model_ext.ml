module Optimize = Slc_num.Optimize
module Mat = Slc_num.Mat

type params = { base : Timing_model.params; gamma : float }

let of_base base = { base; gamma = 0.0 }

let n_params = 5

let to_vec p = Array.append (Timing_model.to_vec p.base) [| p.gamma |]

let of_vec v =
  if Array.length v <> 5 then Slc_obs.Slc_error.invalid_input ~site:"Model_ext.of_vec" "need 5 coords";
  { base = Timing_model.of_vec (Array.sub v 0 4); gamma = v.(4) }

let fF = 1e-15

let cross_term p (pt : Slc_cell.Harness.point) =
  let cload_fF = pt.Slc_cell.Harness.cload /. fF in
  let sin_ps = pt.Slc_cell.Harness.sin /. 1e-12 in
  p.gamma *. sin_ps *. cload_fF *. fF

let eval p ~ieff pt =
  let b = p.base in
  Timing_model.eval b ~ieff pt
  +. (b.Timing_model.kd
     *. (pt.Slc_cell.Harness.vdd +. b.Timing_model.v_off)
     *. cross_term p pt /. ieff)

let grad p ~ieff pt =
  let b = p.base in
  let base_grad = Timing_model.grad b ~ieff pt in
  let v = pt.Slc_cell.Harness.vdd +. b.Timing_model.v_off in
  let cross = cross_term p pt in
  let sin_ps = pt.Slc_cell.Harness.sin /. 1e-12 in
  let cload_fF = pt.Slc_cell.Harness.cload /. fF in
  (* The cross term adds to the cap term, so kd and v_off gradients get
     corrections too. *)
  [|
    base_grad.(0) +. (v *. cross /. ieff);
    base_grad.(1);
    base_grad.(2) +. (b.Timing_model.kd *. cross /. ieff);
    base_grad.(3);
    b.Timing_model.kd *. v *. sin_ps *. cload_fF *. fF /. ieff;
  |]

let residuals_of obs v =
  let p = of_vec v in
  Array.map
    (fun (o : Extract_lse.observation) ->
      (eval p ~ieff:o.Extract_lse.ieff o.Extract_lse.point
      -. o.Extract_lse.value)
      /. o.Extract_lse.value)
    obs

let jacobian_of obs v =
  let p = of_vec v in
  Mat.init (Array.length obs) n_params (fun i j ->
      let o = obs.(i) in
      let g = grad p ~ieff:o.Extract_lse.ieff o.Extract_lse.point in
      g.(j) /. o.Extract_lse.value)

let fit ?init obs =
  if Array.length obs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Model_ext.fit" "no observations";
  let init =
    match init with Some p -> p | None -> of_base Timing_model.default_init
  in
  let result =
    Optimize.levenberg_marquardt ~residuals:(residuals_of obs)
      ~jacobian:(jacobian_of obs) ~x0:(to_vec init) ()
  in
  of_vec result.Optimize.x

let avg_abs_rel_error p obs =
  if Array.length obs = 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Model_ext.avg_abs_rel_error" "empty";
  let acc = ref 0.0 in
  Array.iter
    (fun (o : Extract_lse.observation) ->
      acc :=
        !acc
        +. Float.abs
             ((eval p ~ieff:o.Extract_lse.ieff o.Extract_lse.point
              -. o.Extract_lse.value)
             /. o.Extract_lse.value))
    obs;
  !acc /. float_of_int (Array.length obs)
