module Optimize = Slc_num.Optimize
module Mat = Slc_num.Mat

type observation = {
  point : Slc_cell.Harness.point;
  ieff : float;
  value : float;
}

let residuals_of ?(weights = [||]) obs v =
  let p = Timing_model.of_vec v in
  Array.mapi
    (fun i o ->
      let w = if Array.length weights = 0 then 1.0 else weights.(i) in
      w *. Timing_model.rel_residual p ~ieff:o.ieff o.point ~observed:o.value)
    obs

let jacobian_of ?(weights = [||]) obs v =
  let p = Timing_model.of_vec v in
  Mat.init (Array.length obs) Timing_model.n_params (fun i j ->
      let o = obs.(i) in
      let w = if Array.length weights = 0 then 1.0 else weights.(i) in
      let g = Timing_model.grad p ~ieff:o.ieff o.point in
      w *. g.(j) /. o.value)

let fit ?workspace ?(init = Timing_model.default_init) ?weights obs =
  if Array.length obs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Extract_lse.fit" "no observations";
  Array.iter
    (fun o ->
      if o.value <= 0.0 then
        Slc_obs.Slc_error.invalid_input ~site:"Extract_lse.fit" "non-positive observation")
    obs;
  (match weights with
  | Some w when Array.length w <> Array.length obs ->
    Slc_obs.Slc_error.invalid_input ~site:"Extract_lse.fit" "weights length mismatch"
  | _ -> ());
  let result =
    Optimize.levenberg_marquardt ?workspace
      ~residuals:(residuals_of ?weights obs)
      ~jacobian:(jacobian_of ?weights obs)
      ~x0:(Timing_model.to_vec init) ()
  in
  Timing_model.of_vec result.Optimize.x

let abs_rel_errors p obs =
  Array.map
    (fun o ->
      Float.abs
        (Timing_model.rel_residual p ~ieff:o.ieff o.point ~observed:o.value))
    obs

let avg_abs_rel_error p obs =
  if Array.length obs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Extract_lse.avg_abs_rel_error" "empty";
  Slc_num.Vec.mean (abs_rel_errors p obs)

let max_abs_rel_error p obs =
  if Array.length obs = 0 then Slc_obs.Slc_error.invalid_input ~site:"Extract_lse.max_abs_rel_error" "empty";
  Slc_num.Vec.max_elt (abs_rel_errors p obs)
