module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness

type entry = {
  arc : Arc.t;
  delay_params : Timing_model.params;
  slew_params : Timing_model.params;
}

type t = {
  tech : Tech.t;
  prior : Prior.pair;
  k : int;
  entries : entry list;
  sim_runs : int;
}

let characterize ?(cells = Cells.all) ?seed ~prior tech ~k =
  let before = Harness.sim_count () in
  let entries =
    List.concat_map
      (fun cell ->
        List.map
          (fun arc ->
            let points = Input_space.fitting_points tech ~k in
            let ds = Char_flow.simulate_dataset ?seed tech arc points in
            let obs_td =
              Char_flow.observations_of_dataset ?seed tech ds
                ~metric:Prior.Delay
            in
            let obs_so =
              Char_flow.observations_of_dataset ?seed tech ds
                ~metric:Prior.Slew
            in
            {
              arc;
              delay_params =
                Map_fit.fit_params ~prior:prior.Prior.delay ~tech obs_td;
              slew_params =
                Map_fit.fit_params ~prior:prior.Prior.slew ~tech obs_so;
            })
          (Arc.all_of_cell cell))
      cells
  in
  { tech; prior; k; entries; sim_runs = Harness.sim_count () - before }

let find t arc =
  List.find_opt (fun e -> String.equal (Arc.name e.arc) (Arc.name arc)) t.entries

let entry_exn t arc =
  match find t arc with Some e -> e | None -> raise Not_found

let ieff_of t arc (point : Input_space.point) =
  Slc_cell.Equivalent.ieff
    (Slc_cell.Equivalent.of_arc t.tech arc)
    ~vdd:point.Harness.vdd

let delay t arc point =
  Timing_model.eval (entry_exn t arc).delay_params ~ieff:(ieff_of t arc point)
    point

let slew t arc point =
  Timing_model.eval (entry_exn t arc).slew_params ~ieff:(ieff_of t arc point)
    point

let oracle_query t arc point = (delay t arc point, slew t arc point)

let validate ?(n = 40) ?(rng_seed = 7) t =
  let points = Input_space.validation_set ~n ~seed:rng_seed t.tech in
  List.map
    (fun e ->
      let ds = Char_flow.simulate_dataset t.tech e.arc points in
      let predictor =
        {
          Char_flow.label = "bayes-library";
          train_cost = t.k;
          model =
            Char_flow.Timing_pair
              { td = e.delay_params; sout = e.slew_params };
          predict_td = delay t e.arc;
          predict_sout = slew t e.arc;
        }
      in
      (Arc.name e.arc, Char_flow.evaluate predictor ds))
    t.entries

let summary ppf t =
  Format.fprintf ppf
    "bayes_library(%s) { /* %d arcs, k = %d, %d simulator runs */@."
    t.tech.Tech.name (List.length t.entries) t.k t.sim_runs;
  List.iter
    (fun e ->
      Format.fprintf ppf "  arc %-16s delay %a@." (Arc.name e.arc)
        Timing_model.pp e.delay_params)
    t.entries;
  Format.fprintf ppf "}@."
