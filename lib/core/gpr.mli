(** Exact-inference Gaussian-process regression over the library input
    space ξ = (Sin, Cload, Vdd).

    A squared-exponential kernel with per-dimension (ARD) length-scales
    on the {e normalized} input cube ({!Input_space.normalize}), exact
    posterior via a dense Cholesky factorization
    ({!Slc_num.Linalg.cholesky_into}) — sized for the ultra-small
    training sets of this flow (a handful to a few dozen points), not
    for large-scale GP work.

    Two roles in the characterization flow (see
    [docs/characterization.md]):

    - {b acquisition surrogate}: when the analytical 4-parameter form
      fits the observed points poorly, the adaptive design
      ({!Statistical.design}) ranks candidate conditions by GP
      posterior predictive variance instead of the parametric
      information gain;
    - {b fallback predictor}: a {!Char_flow.model} variant
      ([Gpr_pair]) serves arcs where the analytical fit stays poor,
      and round-trips through the persistent store like every other
      artifact.

    Everything here is deterministic: {!fit} with the same inputs is
    bitwise reproducible, and {!refit} of a stored {!model} rebuilds a
    posterior whose predictions are bitwise identical to the
    original's (the contract the store's Hexfloat round-trip relies
    on). *)

type hyper = {
  signal2 : float;  (** signal variance σ_f², in squared target units *)
  noise2 : float;   (** observation-noise variance σ_n² on the diagonal *)
  lengths : float array;
      (** ARD length-scales, one per normalized input dimension
          (Sin, Cload, Vdd), in unit-cube units *)
}

type model = {
  m_hyper : hyper;
  m_mean : float;  (** constant prior mean (the training-target average) *)
  m_points : Input_space.point array;  (** training inputs, raw units *)
  m_targets : float array;             (** training observations *)
}
(** The serializable substance of a fitted GP: hyperparameters plus the
    raw training set.  The posterior (Cholesky factor and dual weights)
    is redundant — {!refit} reconstructs it deterministically, which is
    what keeps the store format small and the round-trip bitwise. *)

type t
(** A fitted posterior: a {!model} together with its normalized inputs,
    the lower Cholesky factor of K + σ_n²·I and the dual weights
    α = (K + σ_n²·I)⁻¹ (y − mean). *)

val model : t -> model
(** The serializable part of a fitted posterior. *)

type workspace
(** Caller-owned scratch buffers (kernel-matrix assembly, solve
    intermediates, predictive k*-vectors), grown on demand and reused
    across fits and predictions.  One per worker domain
    ({!Slc_num.Parallel.Slot}) keeps the adaptive-design inner loop
    allocation-lean.  Results are bitwise identical with and without
    a workspace. *)

val workspace : unit -> workspace

val default_hyper :
  Slc_device.Tech.t -> Input_space.point array -> float array -> hyper
(** Deterministic data-driven defaults: length-scales proportional to
    the per-dimension spread of the normalized inputs (floored for
    degenerate designs), signal variance from the target variance
    (floored relative to the target magnitude), and a small relative
    noise floor that keeps K + σ_n²·I positive definite even with
    duplicated points. *)

val fit :
  ?workspace:workspace ->
  ?hyper:hyper ->
  Slc_device.Tech.t ->
  Input_space.point array ->
  float array ->
  t
(** [fit tech points targets] conditions the GP on the observations.
    [?hyper] overrides {!default_hyper}.  Raises through
    {!Slc_obs.Slc_error} on an empty or length-mismatched training
    set, and {!Slc_num.Linalg.Singular} if the kernel matrix is not
    positive definite (impossible with the default noise floor). *)

val refit : ?workspace:workspace -> Slc_device.Tech.t -> model -> t
(** Rebuilds the posterior of a (de)serialized model.  Bitwise: for
    the same model and technology, [predict]/[predict_var] through the
    result equal the original fit's predictions bit for bit. *)

val predict : ?workspace:workspace -> t -> Input_space.point -> float
(** Posterior predictive mean [m + ks' * alpha] at one condition. *)

val predict_var : ?workspace:workspace -> t -> Input_space.point -> float
(** Posterior predictive variance of the latent function,
    [k(x, x) - |inv(L) ks|^2], clamped at [0].  The adaptive design's
    acquisition score when the GP surrogate is active. *)
