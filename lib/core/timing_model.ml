type params = { kd : float; cpar : float; v_off : float; alpha : float }

let to_vec p = [| p.kd; p.cpar; p.v_off; p.alpha |]

let of_vec v =
  if Array.length v <> 4 then Slc_obs.Slc_error.invalid_input ~site:"Timing_model.of_vec" "need 4 coords";
  { kd = v.(0); cpar = v.(1); v_off = v.(2); alpha = v.(3) }

let n_params = 4

let default_init = { kd = 0.4; cpar = 1.0; v_off = -0.25; alpha = 0.1 }

let fF = 1e-15

(* Sin enters in ps because alpha is in fF/ps; the product alpha*sin_ps
   is then in fF like cpar. *)
let cap_term p (pt : Slc_cell.Harness.point) =
  let cload_fF = pt.Slc_cell.Harness.cload /. fF in
  let sin_ps = pt.Slc_cell.Harness.sin /. 1e-12 in
  (cload_fF +. p.cpar +. (p.alpha *. sin_ps)) *. fF

let charge p (pt : Slc_cell.Harness.point) =
  (pt.Slc_cell.Harness.vdd +. p.v_off) *. cap_term p pt

let eval p ~ieff pt =
  if ieff <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Timing_model.eval" "ieff must be > 0";
  p.kd *. charge p pt /. ieff

let grad p ~ieff pt =
  let v = pt.Slc_cell.Harness.vdd +. p.v_off in
  let c = cap_term p pt in
  let sin_ps = pt.Slc_cell.Harness.sin /. 1e-12 in
  [|
    v *. c /. ieff;                        (* d/d kd *)
    p.kd *. v *. fF /. ieff;               (* d/d cpar *)
    p.kd *. c /. ieff;                     (* d/d v_off *)
    p.kd *. v *. sin_ps *. fF /. ieff;     (* d/d alpha *)
  |]

let rel_residual p ~ieff pt ~observed =
  if observed = 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Timing_model.rel_residual" "observed = 0";
  (eval p ~ieff pt -. observed) /. observed

let pp ppf p =
  Format.fprintf ppf "{kd=%.3f; Cpar=%.3f fF; V'=%.3f V; alpha=%.3f fF/ps}"
    p.kd p.cpar p.v_off p.alpha
