module Tech = Slc_device.Tech
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Equivalent = Slc_cell.Equivalent
module Mvn = Slc_prob.Mvn
module Interp = Slc_num.Interp
module Vec = Slc_num.Vec

type metric = Delay | Slew

let metric_to_string = function Delay -> "delay" | Slew -> "slew"

type fitted_arc = {
  tech_name : string;
  arc_name : string;
  params : Timing_model.params;
  fit_error : float;
}

type t = {
  metric : metric;
  mvn : Mvn.t;
  beta : Interp.grid3;
  provenance : fitted_arc list;
  learn_cost : int;
}

let grid_levels_default = [| 4; 4; 3 |]

(* One historical simulation record: both metrics read from one run. *)
type raw = {
  r_tech : Tech.t;
  r_arc : Arc.t;
  r_ieffs : float array;  (* per grid point *)
  r_td : float array;
  r_sout : float array;
  r_points : Harness.point array;
}

let axes_of_grid_levels levels =
  Array.map (fun n -> Vec.linspace 0.05 0.95 n) levels

let gather ~cells ~grid_levels historical =
  let unit_points = Input_space.unit_grid ~levels:grid_levels in
  List.concat_map
    (fun tech ->
      List.concat_map
        (fun cell ->
          List.map
            (fun arc ->
              let points =
                Array.map (Input_space.denormalize tech) unit_points
              in
              let eq = Equivalent.of_arc tech arc in
              let ieffs =
                Array.map
                  (fun (p : Harness.point) ->
                    Equivalent.ieff eq ~vdd:p.Harness.vdd)
                  points
              in
              let td = Array.make (Array.length points) 0.0 in
              let sout = Array.make (Array.length points) 0.0 in
              Array.iteri
                (fun i p ->
                  let m = Harness.simulate tech arc p in
                  td.(i) <- m.Harness.td;
                  sout.(i) <- m.Harness.sout)
                points;
              {
                r_tech = tech;
                r_arc = arc;
                r_ieffs = ieffs;
                r_td = td;
                r_sout = sout;
                r_points = points;
              })
            (Arc.all_of_cell cell))
        cells)
    historical

let build ~metric ~grid_levels ~beta_rel_floor ~learn_cost raws =
  if raws = [] then Slc_obs.Slc_error.invalid_input ~site:"Prior.build" "no historical data";
  let values r = match metric with Delay -> r.r_td | Slew -> r.r_sout in
  (* Fit each historical arc and keep its per-condition relative
     residuals. *)
  let fits =
    List.map
      (fun r ->
        let obs =
          Array.init (Array.length r.r_points) (fun i ->
              {
                Extract_lse.point = r.r_points.(i);
                ieff = r.r_ieffs.(i);
                value = (values r).(i);
              })
        in
        let params = Extract_lse.fit obs in
        let residuals =
          Array.map
            (fun (o : Extract_lse.observation) ->
              Timing_model.rel_residual params ~ieff:o.ieff o.point
                ~observed:o.value)
            obs
        in
        let fitted =
          {
            tech_name = r.r_tech.Tech.name;
            arc_name = Arc.name r.r_arc;
            params;
            fit_error = Extract_lse.avg_abs_rel_error params obs;
          }
        in
        (fitted, residuals))
      raws
  in
  let provenance = List.map fst fits in
  let param_rows =
    Array.of_list
      (List.map (fun f -> Timing_model.to_vec f.params) provenance)
  in
  let mvn =
    let fitted = Mvn.of_samples param_rows in
    (* Floor the per-parameter prior sigma: a handful of historical arcs
       that happen to agree must not produce an overconfident prior
       that would crush abundant target-node data. *)
    let sigma_floor = [| 0.03; 0.15; 0.03; 0.03 |] in
    let cov =
      Slc_num.Mat.init 4 4 (fun i j ->
          let v = Slc_num.Mat.get (fitted : Mvn.t).Mvn.cov i j in
          if i = j then Float.max v (sigma_floor.(i) *. sigma_floor.(i))
          else v)
    in
    Mvn.make ~mu:(fitted : Mvn.t).Mvn.mu ~cov
  in
  (* Precision per normalized grid point, Eq. 9 over the pooled
     historical residuals. *)
  let n_points =
    match fits with (_, r) :: _ -> Array.length r | [] -> 0
  in
  let beta_flat =
    Array.init n_points (fun i ->
        let es = List.map (fun (_, residuals) -> residuals.(i)) fits in
        let n = float_of_int (List.length es) in
        let mean_sq =
          List.fold_left (fun acc e -> acc +. (e *. e)) 0.0 es /. n
        in
        let mean_abs =
          List.fold_left (fun acc e -> acc +. Float.abs e) 0.0 es /. n
        in
        let denom = mean_sq -. (mean_abs *. mean_abs) in
        let denom = Float.max denom (beta_rel_floor *. beta_rel_floor) in
        1.0 /. denom)
  in
  (* The unit grid enumerates coordinates in row-major (sin, cload,
     vdd) order matching Sampling.full_factorial. *)
  let axes = axes_of_grid_levels grid_levels in
  let n_s = grid_levels.(0) and n_c = grid_levels.(1) and n_v = grid_levels.(2) in
  if n_s * n_c * n_v <> n_points then
    Slc_obs.Slc_error.invalid_input ~site:"Prior.build" "grid shape mismatch";
  let values3 =
    Array.init n_s (fun i ->
        Array.init n_c (fun j ->
            Array.init n_v (fun k -> beta_flat.((((i * n_c) + j) * n_v) + k))))
  in
  let beta =
    { Interp.axes = (axes.(0), axes.(1), axes.(2)); values3 }
  in
  { metric; mvn; beta; provenance; learn_cost }

let learn ?(cells = Cells.paper_set) ?(grid_levels = grid_levels_default)
    ?(beta_rel_floor = 0.01) ~historical metric =
  if historical = [] then Slc_obs.Slc_error.invalid_input ~site:"Prior.learn" "no historical nodes";
  let before = Harness.sim_count () in
  let raws = gather ~cells ~grid_levels historical in
  let learn_cost = Harness.sim_count () - before in
  build ~metric ~grid_levels ~beta_rel_floor ~learn_cost raws

type pair = { delay : t; slew : t }

let learn_pair ?(cells = Cells.paper_set) ?(grid_levels = grid_levels_default)
    ~historical () =
  if historical = [] then Slc_obs.Slc_error.invalid_input ~site:"Prior.learn_pair" "no historical nodes";
  let before = Harness.sim_count () in
  let raws = gather ~cells ~grid_levels historical in
  let learn_cost = Harness.sim_count () - before in
  let beta_rel_floor = 0.01 in
  {
    delay = build ~metric:Delay ~grid_levels ~beta_rel_floor ~learn_cost raws;
    slew = build ~metric:Slew ~grid_levels ~beta_rel_floor ~learn_cost raws;
  }

let beta_at t tech point =
  let u = Input_space.normalize tech point in
  let xs, ys, zs = t.beta.Interp.axes in
  (* Clamp to the grid span: precision is never extrapolated beyond the
     historically observed conditions. *)
  let clamp axis x =
    Float.max axis.(0) (Float.min axis.(Array.length axis - 1) x)
  in
  Interp.trilinear t.beta (clamp xs u.(0)) (clamp ys u.(1)) (clamp zs u.(2))

let constant_beta t =
  let xs, ys, zs = t.beta.Interp.axes in
  let acc = ref 0.0 and n = ref 0 in
  Array.iter
    (fun plane ->
      Array.iter
        (fun row ->
          Array.iter
            (fun v ->
              acc := !acc +. v;
              incr n)
            row)
        plane)
    t.beta.Interp.values3;
  let avg = !acc /. float_of_int !n in
  let values3 =
    Array.map (Array.map (Array.map (fun _ -> avg))) t.beta.Interp.values3
  in
  { t with beta = { Interp.axes = (xs, ys, zs); values3 } }

let pp_summary ppf t =
  let mu = (t.mvn : Mvn.t).Mvn.mu in
  Format.fprintf ppf "prior(%s): mu=%a from %d historical arcs, %d sims@."
    (metric_to_string t.metric) Timing_model.pp (Timing_model.of_vec mu)
    (List.length t.provenance) t.learn_cost;
  List.iter
    (fun f ->
      Format.fprintf ppf "  %-6s %-16s %a  err=%.2f%%@." f.tech_name
        f.arc_name Timing_model.pp f.params (100.0 *. f.fit_error))
    t.provenance
