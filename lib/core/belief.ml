module Vec = Slc_num.Vec
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg
module Mvn = Slc_prob.Mvn

type message = { mu : Vec.t; cov : Mat.t }

let diffuse ?(scale = 10.0) dim =
  if dim < 1 then Slc_obs.Slc_error.invalid_input ~site:"Belief.diffuse" "dimension must be >= 1";
  { mu = Vec.create dim; cov = Mat.scale scale (Mat.identity dim) }

(* ------------------------------------------------------------------ *)
(* Workspace: every scratch matrix/vector a conjugate update needs,
   allocated once and reused.  Residual BP recomputes beliefs many
   times per node, so the three SPD inversions per update run through
   [Linalg.spd_inverse_into] against these buffers instead of allocating
   fresh matrices — bitwise identical to the allocating forms. *)

type workspace = {
  w_dim : int;
  w_a : Mat.t; (* ridged input to an inversion *)
  w_l : Mat.t; (* Cholesky factor scratch *)
  w_e : Vec.t;
  w_y : Vec.t;
  w_prior_prec : Mat.t;
  w_obs_prec : Mat.t;
  w_post_prec : Mat.t;
  w_rhs : Vec.t;
  w_tmp : Vec.t;
}

let make_workspace dim =
  if dim < 1 then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.make_workspace"
      "dimension must be >= 1";
  {
    w_dim = dim;
    w_a = Mat.create dim dim;
    w_l = Mat.create dim dim;
    w_e = Vec.create dim;
    w_y = Vec.create dim;
    w_prior_prec = Mat.create dim dim;
    w_obs_prec = Mat.create dim dim;
    w_post_prec = Mat.create dim dim;
    w_rhs = Vec.create dim;
    w_tmp = Vec.create dim;
  }

let check_ws ws dim =
  if ws.w_dim <> dim then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.observe"
      "workspace dimension mismatch"

(* [spd_inverse (add_ridge m r)] through the workspace, into [out]. *)
let inverse_ridged ws m r ~out =
  Mat.add_ridge_into m r ws.w_a;
  Linalg.spd_inverse_into ws.w_a ~l:ws.w_l ~e:ws.w_e ~y:ws.w_y ~out

(* Per-node observation statistics.  The observation mean and precision
   depend only on the node's rows, so they are computed once per node
   and reused across every belief recomputation of a propagation run. *)
type stats = { st_mean : Vec.t; st_obs_prec : Mat.t }

let stats_of_rows ws dim rows =
  let n = Array.length rows in
  let mean = Slc_prob.Describe.mean_vector rows in
  let obs_cov =
    if n >= 2 then
      Mat.scale (1.0 /. float_of_int n)
        (Mat.add_ridge (Slc_prob.Describe.covariance_matrix rows) 1e-6)
    else
      (* A single observation: assume a typical within-node spread. *)
      Mat.scale 0.01 (Mat.identity dim)
  in
  let obs_prec = Mat.create dim dim in
  inverse_ridged ws obs_cov 1e-12 ~out:obs_prec;
  { st_mean = mean; st_obs_prec = obs_prec }

(* Conjugate update against precomputed stats.  Only the returned
   posterior (mu, cov) is freshly allocated; all intermediates live in
   the workspace. *)
let observe_stats ws msg st =
  let dim = ws.w_dim in
  (* Posterior precision = prior precision + observation precision. *)
  inverse_ridged ws msg.cov 1e-12 ~out:ws.w_prior_prec;
  Mat.add_into ws.w_prior_prec st.st_obs_prec ws.w_post_prec;
  let post_cov = Mat.create dim dim in
  Linalg.spd_inverse_into ws.w_post_prec ~l:ws.w_l ~e:ws.w_e ~y:ws.w_y
    ~out:post_cov;
  Mat.mul_vec_into ws.w_prior_prec msg.mu ws.w_rhs;
  Mat.mul_vec_into st.st_obs_prec st.st_mean ws.w_tmp;
  for i = 0 to dim - 1 do
    ws.w_rhs.(i) <- ws.w_rhs.(i) +. ws.w_tmp.(i)
  done;
  let mu = Vec.create dim in
  Mat.mul_vec_into post_cov ws.w_rhs mu;
  { mu; cov = post_cov }

let observe ?ws msg rows =
  let n = Array.length rows in
  if n = 0 then msg
  else begin
    let dim = Vec.dim msg.mu in
    let ws =
      match ws with
      | Some w ->
        check_ws w dim;
        w
      | None -> make_workspace dim
    in
    observe_stats ws msg (stats_of_rows ws dim rows)
  end

let drift msg q =
  if Mat.rows q <> Vec.dim msg.mu then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.drift" "dimension mismatch";
  { msg with cov = Mat.add msg.cov q }

(* Node-to-node movement of {kd, Cpar, V', alpha} in their natural
   units, judged from Table-I-scale variation. *)
let default_drift dim =
  let sigmas = [| 0.02; 0.10; 0.02; 0.02 |] in
  Mat.diag (Array.init dim (fun i ->
      let s = if i < Array.length sigmas then sigmas.(i) else 0.05 in
      s *. s))

let chain ?drift_cov nodes =
  match nodes with
  | [] -> Slc_obs.Slc_error.invalid_input ~site:"Belief.chain" "empty chain"
  | (_, first) :: _ ->
    let dim =
      if Array.length first > 0 then Vec.dim first.(0)
      else Timing_model.n_params
    in
    let q = match drift_cov with Some q -> q | None -> default_drift dim in
    let ws = make_workspace dim in
    List.fold_left
      (fun msg (_, rows) -> observe ~ws (drift msg q) rows)
      (diffuse dim) nodes

let to_mvn msg = Mvn.make ~mu:msg.mu ~cov:msg.cov

(* ------------------------------------------------------------------ *)
(* Belief graphs: directed Gaussian message passing over an arbitrary
   topology, generalizing the linear chain.

   Semantics (a filtering generalization of {!chain}, not sum-product
   with message exclusion): the belief at a node is the conjugate
   update of the combination of its applied incoming messages with the
   node's own rows; the message along an edge is the source belief
   drifted by the process-evolution covariance.  A node with no applied
   incoming messages starts from {!diffuse}; a single incoming message
   passes through the combination untouched, so a chain-shaped graph
   reproduces the {!chain} fold bit for bit.

   Scheduling is residual-prioritized (residual belief propagation):
   each edge tracks the distance between its current message and the
   message it would carry if recomputed now; the edge with the largest
   residual is applied first.  Never-applied edges carry an infinite
   residual, so every edge is applied at least once before convergence
   can be declared.  Selection is a linear argmax with a strictly-
   greater comparison, so ties break toward the lowest edge index —
   scheduling is fully deterministic.  On a DAG the schedule terminates
   with every residual at zero; on a cyclic graph propagation iterates
   toward a fixed point under the [max_updates] cap. *)

type gnode = { n_name : string; n_stats : stats option }

type graph = {
  g_dim : int;
  g_q : Mat.t;
  g_nodes : gnode array;
  g_edges : (int * int) array;
  g_in : int list array; (* per node: incoming edge indices, ascending *)
  g_out : int list array; (* per node: outgoing edge indices, ascending *)
}

let graph_make ?drift_cov ~nodes ~edges () =
  if nodes = [] then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.graph_make" "empty graph";
  let dim =
    match
      List.find_opt (fun (_, rows) -> Array.length rows > 0) nodes
    with
    | Some (_, rows) -> Vec.dim rows.(0)
    | None -> Timing_model.n_params
  in
  List.iter
    (fun (_, rows) ->
      Array.iter
        (fun row ->
          if Vec.dim row <> dim then
            Slc_obs.Slc_error.invalid_input ~site:"Belief.graph_make"
              "row dimension mismatch")
        rows)
    nodes;
  let q = match drift_cov with Some q -> q | None -> default_drift dim in
  if Mat.rows q <> dim then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.graph_make"
      "drift dimension mismatch";
  let n = List.length nodes in
  List.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        Slc_obs.Slc_error.invalid_input ~site:"Belief.graph_make"
          "edge endpoint out of range";
      if s = d then
        Slc_obs.Slc_error.invalid_input ~site:"Belief.graph_make" "self edge")
    edges;
  let ws = make_workspace dim in
  let g_nodes =
    Array.of_list
      (List.map
         (fun (name, rows) ->
           {
             n_name = name;
             n_stats =
               (if Array.length rows = 0 then None
                else Some (stats_of_rows ws dim rows));
           })
         nodes)
  in
  let g_edges = Array.of_list edges in
  let g_in = Array.make n [] and g_out = Array.make n [] in
  for e = Array.length g_edges - 1 downto 0 do
    let s, d = g_edges.(e) in
    g_in.(d) <- e :: g_in.(d);
    g_out.(s) <- e :: g_out.(s)
  done;
  { g_dim = dim; g_q = q; g_nodes; g_edges; g_in; g_out }

(* A chain as a graph: a synthetic origin node with no rows feeds the
   first real node, so the first real belief is
   [observe (drift (diffuse dim) q) rows] — exactly the first step of
   the {!chain} fold (which drifts before its first observation). *)
let graph_of_chain ?drift_cov nodes =
  if nodes = [] then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.graph_of_chain" "empty chain";
  let n = List.length nodes in
  graph_make ?drift_cov
    ~nodes:(("<origin>", [||]) :: nodes)
    ~edges:(List.init n (fun i -> (i, i + 1)))
    ()

type propagation = {
  beliefs : (string * message) list;
  updates : int;
  converged : bool;
}

(* Precision-weighted product of two-or-more Gaussian messages, folded
   in ascending edge order. *)
let combine ws msgs =
  match msgs with
  | [] -> diffuse ws.w_dim
  | [ m ] -> m
  | msgs ->
    let dim = ws.w_dim in
    let prec = Mat.create dim dim in
    let h = Vec.create dim in
    List.iter
      (fun m ->
        inverse_ridged ws m.cov 1e-12 ~out:ws.w_prior_prec;
        Mat.add_into prec ws.w_prior_prec prec;
        Mat.mul_vec_into ws.w_prior_prec m.mu ws.w_tmp;
        for i = 0 to dim - 1 do
          h.(i) <- h.(i) +. ws.w_tmp.(i)
        done)
      msgs;
    let cov = Mat.create dim dim in
    inverse_ridged ws prec 1e-12 ~out:cov;
    let mu = Vec.create dim in
    Mat.mul_vec_into cov h mu;
    { mu; cov }

let propagate ?(tol = 1e-9) ?(max_updates = 10_000) g =
  if max_updates < 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.propagate"
      "max_updates must be >= 0";
  let ws = make_workspace g.g_dim in
  let n_edges = Array.length g.g_edges in
  let msgs : message option array = Array.make n_edges None in
  let pending : message option array = Array.make n_edges None in
  let residual = Array.make n_edges Float.infinity in
  let belief v =
    let incoming =
      List.filter_map (fun e -> msgs.(e)) g.g_in.(v)
    in
    let prior = combine ws incoming in
    match g.g_nodes.(v).n_stats with
    | None -> prior
    | Some st -> observe_stats ws prior st
  in
  let compute_msg e =
    let s, _ = g.g_edges.(e) in
    drift (belief s) g.g_q
  in
  let distance a b =
    let d = ref 0.0 in
    for i = 0 to g.g_dim - 1 do
      d := Float.max !d (Float.abs (a.mu.(i) -. b.mu.(i)))
    done;
    for i = 0 to g.g_dim - 1 do
      for j = 0 to g.g_dim - 1 do
        d := Float.max !d (Float.abs (Mat.get a.cov i j -. Mat.get b.cov i j))
      done
    done;
    !d
  in
  let updates = ref 0 in
  let converged = ref (n_edges = 0) in
  let running = ref (n_edges > 0) in
  while !running do
    (* Strictly-greater argmax: ties break to the lowest edge index. *)
    let best = ref 0 in
    for e = 1 to n_edges - 1 do
      if residual.(e) > residual.(!best) then best := e
    done;
    let e = !best in
    if residual.(e) <= tol then begin
      converged := true;
      running := false
    end
    else if !updates >= max_updates then running := false
    else begin
      let m =
        match pending.(e) with Some m -> m | None -> compute_msg e
      in
      msgs.(e) <- Some m;
      pending.(e) <- None;
      residual.(e) <- 0.0;
      incr updates;
      (* The destination's belief changed, so every message it launches
         would change: recompute them now and queue the differences. *)
      let _, d = g.g_edges.(e) in
      List.iter
        (fun f ->
          let c = compute_msg f in
          pending.(f) <- Some c;
          residual.(f) <-
            (match msgs.(f) with
            | None -> Float.infinity
            | Some old -> distance old c))
        g.g_out.(d)
    end
  done;
  let beliefs =
    Array.to_list
      (Array.mapi (fun v node -> (node.n_name, belief v)) g.g_nodes)
  in
  { beliefs; updates = !updates; converged = !converged }

let chain_prior (prior : Prior.t) ~ordered =
  let by_tech name =
    List.filter_map
      (fun (f : Prior.fitted_arc) ->
        if String.equal f.Prior.tech_name name then
          Some (Timing_model.to_vec f.Prior.params)
        else None)
      prior.Prior.provenance
  in
  let nodes =
    List.filter_map
      (fun name ->
        match by_tech name with
        | [] -> None
        | rows -> Some (name, Array.of_list rows))
      ordered
  in
  if nodes = [] then Slc_obs.Slc_error.invalid_input ~site:"Belief.chain_prior" "no matching nodes";
  let msg = chain nodes in
  (* The chain tracks the mean; widen by the within-node parameter
     spread so the prior remains honest about arc-to-arc variation. *)
  let all_rows =
    Array.of_list
      (List.map
         (fun (f : Prior.fitted_arc) -> Timing_model.to_vec f.Prior.params)
         prior.Prior.provenance)
  in
  let within = Slc_prob.Describe.covariance_matrix all_rows in
  let cov = Mat.add msg.cov within in
  { prior with Prior.mvn = Mvn.make ~mu:msg.mu ~cov }
