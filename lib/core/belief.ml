module Vec = Slc_num.Vec
module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg
module Mvn = Slc_prob.Mvn

type message = { mu : Vec.t; cov : Mat.t }

let diffuse ?(scale = 10.0) dim =
  if dim < 1 then Slc_obs.Slc_error.invalid_input ~site:"Belief.diffuse" "dimension must be >= 1";
  { mu = Vec.create dim; cov = Mat.scale scale (Mat.identity dim) }

let observe msg rows =
  let n = Array.length rows in
  if n = 0 then msg
  else begin
    let dim = Vec.dim msg.mu in
    let mean = Slc_prob.Describe.mean_vector rows in
    let obs_cov =
      if n >= 2 then
        Mat.scale (1.0 /. float_of_int n)
          (Mat.add_ridge (Slc_prob.Describe.covariance_matrix rows) 1e-6)
      else
        (* A single observation: assume a typical within-node spread. *)
        Mat.scale 0.01 (Mat.identity dim)
    in
    (* Posterior precision = prior precision + observation precision. *)
    let prior_prec = Linalg.spd_inverse (Mat.add_ridge msg.cov 1e-12) in
    let obs_prec = Linalg.spd_inverse (Mat.add_ridge obs_cov 1e-12) in
    let post_prec = Mat.add prior_prec obs_prec in
    let post_cov = Linalg.spd_inverse post_prec in
    let rhs =
      Vec.add (Mat.mul_vec prior_prec msg.mu) (Mat.mul_vec obs_prec mean)
    in
    { mu = Mat.mul_vec post_cov rhs; cov = post_cov }
  end

let drift msg q =
  if Mat.rows q <> Vec.dim msg.mu then
    Slc_obs.Slc_error.invalid_input ~site:"Belief.drift" "dimension mismatch";
  { msg with cov = Mat.add msg.cov q }

(* Node-to-node movement of {kd, Cpar, V', alpha} in their natural
   units, judged from Table-I-scale variation. *)
let default_drift dim =
  let sigmas = [| 0.02; 0.10; 0.02; 0.02 |] in
  Mat.diag (Array.init dim (fun i ->
      let s = if i < Array.length sigmas then sigmas.(i) else 0.05 in
      s *. s))

let chain ?drift_cov nodes =
  match nodes with
  | [] -> Slc_obs.Slc_error.invalid_input ~site:"Belief.chain" "empty chain"
  | (_, first) :: _ ->
    let dim =
      if Array.length first > 0 then Vec.dim first.(0)
      else Timing_model.n_params
    in
    let q = match drift_cov with Some q -> q | None -> default_drift dim in
    List.fold_left
      (fun msg (_, rows) -> observe (drift msg q) rows)
      (diffuse dim) nodes

let to_mvn msg = Mvn.make ~mu:msg.mu ~cov:msg.cov

let chain_prior (prior : Prior.t) ~ordered =
  let by_tech name =
    List.filter_map
      (fun (f : Prior.fitted_arc) ->
        if String.equal f.Prior.tech_name name then
          Some (Timing_model.to_vec f.Prior.params)
        else None)
      prior.Prior.provenance
  in
  let nodes =
    List.filter_map
      (fun name ->
        match by_tech name with
        | [] -> None
        | rows -> Some (name, Array.of_list rows))
      ordered
  in
  if nodes = [] then Slc_obs.Slc_error.invalid_input ~site:"Belief.chain_prior" "no matching nodes";
  let msg = chain nodes in
  (* The chain tracks the mean; widen by the within-node parameter
     spread so the prior remains honest about arc-to-arc variation. *)
  let all_rows =
    Array.of_list
      (List.map
         (fun (f : Prior.fitted_arc) -> Timing_model.to_vec f.Prior.params)
         prior.Prior.provenance)
  in
  let within = Slc_prob.Describe.covariance_matrix all_rows in
  let cov = Mat.add msg.cov within in
  { prior with Prior.mvn = Mvn.make ~mu:msg.mu ~cov }
