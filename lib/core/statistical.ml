module Process = Slc_device.Process
module Harness = Slc_cell.Harness
module Describe = Slc_prob.Describe
module Telemetry = Slc_obs.Telemetry
module Slc_error = Slc_obs.Slc_error

(* Outer-most context annotation for failures escaping a whole
   extraction: per-simulation failures are already annotated (with seed
   and ξ-point) by [Harness.simulate]'s inner [with_context], which
   wins; this fills in arc/tech for anything raised outside a
   simulation (design construction, fitting preconditions, ...). *)
let flow_context (tech : Slc_device.Tech.t) arc =
  {
    Slc_error.arc = Some (Slc_cell.Arc.name arc);
    tech = Some tech.Slc_device.Tech.name;
    seed = None;
    point = None;
  }

type method_ = Bayes of Prior.pair | Lse | Lut

let method_label = function
  | Bayes _ -> "model+bayes"
  | Lse -> "model+lse"
  | Lut -> "lookup-table"

type seed_status = Seed_ok | Seed_degraded of int | Seed_failed of exn

type population = {
  meth : method_;
  seeds : Process.seed array;
  status : seed_status array;
  predictors : Char_flow.predictor option array;
  train_cost : int;
  predict_td : Process.seed -> Input_space.point -> float;
  predict_sout : Process.seed -> Input_space.point -> float;
}

type seed_models = {
  sm_predictors : Char_flow.predictor option array;
  sm_status : seed_status array;
}

type adaptive = {
  a_rng : Slc_prob.Rng.t;
  a_candidates : int;
  a_gpr_threshold : float;
}

type design =
  | Curated
  | Random_per_seed of Slc_prob.Rng.t
  | Adaptive of adaptive

let adaptive_defaults rng =
  {
    a_rng = rng;
    a_candidates = 24;
    a_gpr_threshold = Char_flow.default_gpr_threshold;
  }

(* One LM scratch workspace per worker domain, reused across every fit
   that domain performs. *)
let lm_slot = Slc_num.Parallel.Slot.make Slc_num.Optimize.lm_workspace

(* Likewise for the GPR surrogate/fallback scratch buffers. *)
let gpr_slot = Slc_num.Parallel.Slot.make Gpr.workspace

(* Sequential expected-information-gain design (ROADMAP item 4; Bai et
   al., arXiv 2505.10799).  Each seed draws a candidate pool from its
   own [split_ix] sub-stream, then spends its budget one simulation at
   a time: refit the delay model on the observations so far, score
   every unused candidate by the D-optimal gain β(ξ)·g̃ᵀA⁻¹g̃ against
   the incremental MAP posterior information A ([Map_fit.information]),
   simulate the argmax, repeat.  When the analytical form's residuals
   on the observed points exceed [a_gpr_threshold], a GP surrogate
   takes over the scoring (posterior predictive variance).

   Scheduling independence: every per-seed quantity is a pure function
   of (seed, a_rng, observations of that seed); rounds are advanced in
   lockstep with one [simulate_batch] per round, and all cross-seed
   state lives in per-seed array slots written only between the
   parallel phases. *)
let adaptive_seed_datasets ~record_degraded ~record_failed ~min_points
    ~method_ ~tech ~arc ~seeds ~budget ad =
  let ns = Array.length seeds in
  let nc = ad.a_candidates in
  if nc < budget then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.extract_population"
      "adaptive candidate pool smaller than the budget";
  if not (ad.a_gpr_threshold > 0.0) then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.extract_population"
      "adaptive gpr threshold must be > 0";
  let prior_delay =
    match method_ with
    | Bayes p -> Some p.Prior.delay
    | Lse -> None
    | Lut -> assert false
  in
  (* Pure per-index derivation, as in [Random_per_seed]: the candidate
     pool (and hence everything downstream) is bitwise independent of
     domain count and evaluation order, and [a_rng] is not advanced. *)
  let cands =
    Array.map
      (fun seed ->
        Input_space.random_fitting_points_rng
          (Slc_prob.Rng.split_ix ad.a_rng seed.Process.index)
          tech ~k:nc)
      seeds
  in
  let ieffs =
    Array.mapi
      (fun si pool ->
        Array.map
          (fun (pt : Input_space.point) ->
            Slc_cell.Equivalent.ieff_with_seed tech seeds.(si) arc
              ~vdd:pt.Harness.vdd)
          pool)
      cands
  in
  (* Per-seed acquisition state; written only by the main thread
     between the parallel select/simulate phases. *)
  let used = Array.init ns (fun _ -> Array.make nc false) in
  let obs_rev = Array.make ns [] in
  let meas_rev = Array.make ns [] in
  let n_fail = Array.make ns 0 in
  let first_exn = Array.make ns None in
  let init_params =
    match method_ with
    | Bayes p -> Timing_model.of_vec p.Prior.delay.Prior.mvn.Slc_prob.Mvn.mu
    | Lse -> Timing_model.default_init
    | Lut -> assert false
  in
  let params = Array.make ns init_params in
  let dirty = Array.make ns false in
  for _round = 1 to budget do
    (* Select each seed's next condition (parallel; pure per seed). *)
    let picks =
      Slc_num.Parallel.map
        (fun si ->
          let obs = Array.of_list (List.rev obs_rev.(si)) in
          let p =
            if not dirty.(si) then params.(si)
            else
              let workspace = Slc_num.Parallel.Slot.get lm_slot in
              match method_ with
              | Bayes prior ->
                Map_fit.fit_params ~workspace ~prior:prior.Prior.delay ~tech
                  obs
              | Lse -> Extract_lse.fit ~workspace obs
              | Lut -> assert false
          in
          let use_gpr =
            Array.length obs >= 2
            && Extract_lse.avg_abs_rel_error p obs > ad.a_gpr_threshold
          in
          let score =
            if use_gpr then begin
              let workspace = Slc_num.Parallel.Slot.get gpr_slot in
              let g =
                Gpr.fit ~workspace tech
                  (Array.map (fun o -> o.Extract_lse.point) obs)
                  (Array.map (fun o -> o.Extract_lse.value) obs)
              in
              fun ci -> Gpr.predict_var ~workspace g cands.(si).(ci)
            end
            else begin
              let information =
                Map_fit.information ?prior:prior_delay ~tech ~at:p obs
              in
              fun ci ->
                Map_fit.predictive_gain ?prior:prior_delay ~tech ~information
                  ~at:p ~ieff:ieffs.(si).(ci)
                  cands.(si).(ci)
            end
          in
          let best = ref (-1) and best_score = ref neg_infinity in
          for ci = 0 to nc - 1 do
            if not used.(si).(ci) then begin
              let s = score ci in
              (* Strict [>]: ties resolve to the lowest candidate
                 index, keeping the selection deterministic. *)
              if s > !best_score then begin
                best := ci;
                best_score := s
              end
            end
          done;
          if !best < 0 then
            (* All remaining scores were non-finite; fall back to the
               first unused candidate rather than stalling. *)
            (try
               for ci = 0 to nc - 1 do
                 if not used.(si).(ci) then begin
                   best := ci;
                   raise Exit
                 end
               done
             with Exit -> ());
          (!best, p))
        (Array.init ns Fun.id)
    in
    Array.iteri
      (fun si (ci, p) ->
        params.(si) <- p;
        dirty.(si) <- false;
        used.(si).(ci) <- true)
      picks;
    (* One lockstep batch advances every seed's chosen point. *)
    let results =
      Harness.simulate_batch tech arc
        (Array.mapi (fun si (ci, _) -> (seeds.(si), cands.(si).(ci))) picks)
    in
    Array.iteri
      (fun si r ->
        let ci, _ = picks.(si) in
        match r with
        | Ok m ->
          meas_rev.(si) <- (ci, m) :: meas_rev.(si);
          obs_rev.(si) <-
            {
              Extract_lse.point = cands.(si).(ci);
              ieff = ieffs.(si).(ci);
              value = m.Harness.td;
            }
            :: obs_rev.(si);
          dirty.(si) <- true
        | Error e ->
          n_fail.(si) <- n_fail.(si) + 1;
          if first_exn.(si) = None then first_exn.(si) <- Some e)
      results
  done;
  (* Package each seed's surviving observations as a dataset, with the
     same degradation ladder as the fixed designs: failures cost only
     their round, and a seed keeps fitting while at least [min_points]
     points survive. *)
  Array.init ns (fun si ->
      let meas = List.rev meas_rev.(si) in
      let dataset () =
        {
          Char_flow.arc;
          points =
            Array.of_list (List.map (fun (ci, _) -> cands.(si).(ci)) meas);
          td = Array.of_list (List.map (fun (_, m) -> m.Harness.td) meas);
          sout = Array.of_list (List.map (fun (_, m) -> m.Harness.sout) meas);
          cost =
            List.fold_left (fun acc (_, m) -> acc + m.Harness.retries + 1) 0
              meas;
        }
      in
      if n_fail.(si) = 0 then Some (dataset ())
      else if budget - n_fail.(si) < min_points then begin
        record_failed si (Option.get first_exn.(si));
        None
      end
      else begin
        record_degraded si n_fail.(si);
        Some (dataset ())
      end)

(* Compact a full-design dataset down to the points whose simulations
   survived.  Only called for seeds with at least one failure — the
   all-ok path never rebuilds its arrays, so a failure elsewhere in the
   batch cannot perturb an unaffected seed's fit. *)
let compact_dataset ~arc ~points ~budget ok ms =
  let keep = ref [] in
  for pi = budget - 1 downto 0 do
    if ok pi then keep := pi :: !keep
  done;
  let keep = Array.of_list !keep in
  let cost = ref 0 in
  Array.iter (fun pi -> cost := !cost + (ms pi).Harness.retries + 1) keep;
  {
    Char_flow.arc;
    points = Array.map (fun pi -> points.(pi)) keep;
    td = Array.map (fun pi -> (ms pi).Harness.td) keep;
    sout = Array.map (fun pi -> (ms pi).Harness.sout) keep;
    cost = !cost;
  }

let extract_seed_models ?(min_points = 2) ~design ~method_ ~tech ~arc ~seeds
    ~budget () =
  if Array.length seeds = 0 then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.extract_population" "no seeds";
  if budget < 1 then Slc_obs.Slc_error.invalid_input ~site:"Statistical.extract_population" "budget < 1";
  if min_points < 1 then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.extract_population" "min_points < 1";
  Slc_error.with_context (flow_context tech arc) @@ fun () ->
  Telemetry.with_span Telemetry.span_extract @@ fun () ->
  let ns = Array.length seeds in
  let status = Array.make ns Seed_ok in
  let record_degraded si n_fail =
    status.(si) <- Seed_degraded n_fail;
    Telemetry.incr Telemetry.degraded_seeds
  in
  let record_failed si exn =
    status.(si) <- Seed_failed exn;
    Telemetry.incr Telemetry.failed_seeds
  in
  (* Per-seed predictors, keyed by seed index; [None] marks a failed
     seed (its exception is kept in [status]). *)
  let predictors =
    match method_ with
    | Lut ->
      (* The LUT builds its own grid; the design choice does not apply.
         Its budget simulations are internal to [train_lut], so the
         failure granularity is the whole seed. *)
      let r =
        Slc_num.Parallel.try_map
          (fun seed -> Char_flow.train_lut ~seed tech arc ~budget)
          seeds
      in
      Array.mapi
        (fun si -> function
          | Ok p -> Some p
          | Error e ->
            record_failed si e;
            None)
        r
    | Bayes _ | Lse ->
      let datasets =
        match design with
        | Adaptive ad ->
          adaptive_seed_datasets ~record_degraded ~record_failed ~min_points
            ~method_ ~tech ~arc ~seeds ~budget ad
        | Curated | Random_per_seed _ ->
          let per_seed_points =
            match design with
            | Curated ->
              let pts = Input_space.fitting_points tech ~k:budget in
              Array.make ns pts
            | Random_per_seed rng ->
              (* split_ix is a pure function of (rng state, index): each
                 seed's design is deterministic no matter which domain
                 evaluates it, in what order. *)
              Array.map
                (fun seed ->
                  Input_space.random_fitting_points_rng
                    (Slc_prob.Rng.split_ix rng seed.Process.index)
                    tech ~k:budget)
                seeds
            | Adaptive _ -> assert false
          in
          (* All (seed x point) simulations as one flat lane array routed
             through the lockstep batch engine: [Harness.simulate_batch]
             advances a whole chunk of lanes through one
             structure-of-arrays Newton loop per domain, captures per-lane
             failures without cancelling the batch (so one pathological
             (seed, point) costs exactly one design point, not the whole
             extraction), and keeps per-lane results and accounting
             identical to scalar [Harness.simulate] calls. *)
          let flat =
            Harness.simulate_batch tech arc
              (Array.init (ns * budget) (fun idx ->
                   let si = idx / budget and pi = idx mod budget in
                   (seeds.(si), per_seed_points.(si).(pi))))
          in
          Array.init ns (fun si ->
              let slot pi = flat.((si * budget) + pi) in
              let n_fail = ref 0 in
              let first_exn = ref None in
              for pi = 0 to budget - 1 do
                match slot pi with
                | Ok _ -> ()
                | Error e ->
                  incr n_fail;
                  if !first_exn = None then first_exn := Some e
              done;
              if !n_fail = 0 then begin
                (* The failure-free path is byte-for-byte the historical
                   one: same arrays, same order, same fit inputs. *)
                let m pi =
                  match slot pi with Ok m -> m | Error _ -> assert false
                in
                let cost = ref 0 in
                for pi = 0 to budget - 1 do
                  (* Each attempt of the retry loop is one simulator run. *)
                  cost := !cost + (m pi).Harness.retries + 1
                done;
                Some
                  {
                    Char_flow.arc;
                    points = per_seed_points.(si);
                    td = Array.init budget (fun pi -> (m pi).Harness.td);
                    sout = Array.init budget (fun pi -> (m pi).Harness.sout);
                    cost = !cost;
                  }
              end
              else if budget - !n_fail < min_points then begin
                record_failed si (Option.get !first_exn);
                None
              end
              else begin
                record_degraded si !n_fail;
                let m pi =
                  match slot pi with Ok m -> m | Error _ -> assert false
                in
                Some
                  (compact_dataset ~arc ~points:per_seed_points.(si) ~budget
                     (fun pi -> Result.is_ok (slot pi))
                     m)
              end)
      in
      (* For the adaptive design, a seed whose analytical fit stays
         poor on its own training points falls back to a GPR model. *)
      let fallback =
        match design with
        | Adaptive ad ->
          Some
            (fun ds p ->
              let workspace = Slc_num.Parallel.Slot.get gpr_slot in
              Char_flow.with_gpr_fallback ~workspace
                ~threshold:ad.a_gpr_threshold tech ds p)
        | Curated | Random_per_seed _ -> None
      in
      (* Per-seed fits, each on a worker-owned LM workspace; failed
         seeds are skipped. *)
      Telemetry.with_span Telemetry.span_fit @@ fun () ->
      Slc_num.Parallel.map
        (fun si ->
          match datasets.(si) with
          | None -> None
          | Some ds ->
            let workspace = Slc_num.Parallel.Slot.get lm_slot in
            let seed = seeds.(si) in
            let p =
              match method_ with
              | Bayes prior ->
                Char_flow.train_bayes_on ~workspace ~seed ~prior tech ds
              | Lse -> Char_flow.train_lse_on ~workspace ~seed tech ds
              | Lut -> assert false
            in
            Some
              (match fallback with None -> p | Some f -> f ds p))
        (Array.init ns Fun.id)
  in
  { sm_predictors = predictors; sm_status = status }

let assemble ~method_ ~seeds ~predictors ~status ~train_cost =
  let ns = Array.length seeds in
  if Array.length predictors <> ns || Array.length status <> ns then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.assemble" "array length mismatch";
  let find seed =
    if seed.Process.index < 0 || seed.Process.index >= Array.length seeds then
      Slc_obs.Slc_error.invalid_input ~site:"Statistical.population" "unknown seed";
    match predictors.(seed.Process.index) with
    | Some p -> p
    | None -> (
      match status.(seed.Process.index) with
      | Seed_failed e -> raise e
      | Seed_ok | Seed_degraded _ -> assert false)
  in
  {
    meth = method_;
    seeds;
    status;
    predictors;
    train_cost;
    predict_td = (fun seed pt -> (find seed).Char_flow.predict_td pt);
    predict_sout = (fun seed pt -> (find seed).Char_flow.predict_sout pt);
  }

let extract_population_design ?min_points ~design ~method_ ~tech ~arc ~seeds
    ~budget () =
  let before = Harness.sim_count () in
  let { sm_predictors; sm_status } =
    extract_seed_models ?min_points ~design ~method_ ~tech ~arc ~seeds ~budget
      ()
  in
  assemble ~method_ ~seeds ~predictors:sm_predictors ~status:sm_status
    ~train_cost:(Harness.sim_count () - before)

let extract_population ?min_points ~method_ ~tech ~arc ~seeds ~budget () =
  extract_population_design ?min_points ~design:Curated ~method_ ~tech ~arc
    ~seeds ~budget ()

let seed_surviving pop seed =
  match pop.status.(seed.Process.index) with
  | Seed_failed _ -> false
  | Seed_ok | Seed_degraded _ -> true

let predict_samples pop pt ~td =
  let surviving = Array.of_list (List.filter (seed_surviving pop) (Array.to_list pop.seeds)) in
  Array.map
    (fun seed ->
      if td then pop.predict_td seed pt else pop.predict_sout seed pt)
    surviving

let predict_density pop pt ~td ~grid =
  if grid < 2 then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.predict_density"
      "grid must be >= 2";
  let samples = predict_samples pop pt ~td in
  if Array.length samples < 2 then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.predict_density"
      (Printf.sprintf "needs >= 2 surviving seeds, have %d"
         (Array.length samples));
  let kde = Slc_prob.Kde.fit samples in
  let xs = Slc_prob.Kde.grid kde grid in
  let ps = Slc_prob.Kde.evaluate kde xs in
  Array.init (Array.length xs) (fun i -> (xs.(i), ps.(i)))

type baseline = {
  points : Input_space.point array;
  mu_td : float array;
  sigma_td : float array;
  mu_sout : float array;
  sigma_sout : float array;
  samples_td : float array array;
  samples_sout : float array array;
  failed : (int * int) list;
  cost : int;
}

let monte_carlo_baseline ~tech ~arc ~seeds ~points =
  if Array.length seeds < 2 then
    Slc_obs.Slc_error.invalid_input ~site:"Statistical.monte_carlo_baseline" "need >= 2 seeds";
  Slc_error.with_context (flow_context tech arc) @@ fun () ->
  Telemetry.with_span Telemetry.span_baseline @@ fun () ->
  let before = Harness.sim_count () in
  let np = Array.length points in
  let ns = Array.length seeds in
  (* Simulate each (point, seed) once, reading both metrics.  The work
     list is flattened to individual (seed, point) lanes and routed
     through the lockstep batch engine, which chunks lanes over the
     domain pool and advances each chunk through one
     structure-of-arrays Newton loop.  Failed pairs are recorded and
     excluded from the moment estimates; their sample slots hold
     NaN. *)
  let flat =
    Array.map
      (Result.map (fun m -> (m.Harness.td, m.Harness.sout)))
      (Harness.simulate_batch tech arc
         (Array.init (np * ns) (fun idx ->
              (seeds.(idx mod ns), points.(idx / ns)))))
  in
  let failed = ref [] in
  for idx = (np * ns) - 1 downto 0 do
    match flat.(idx) with
    | Error _ -> failed := (idx / ns, idx mod ns) :: !failed
    | Ok _ -> ()
  done;
  let sample get i j =
    match flat.((i * ns) + j) with Ok v -> get v | Error _ -> Float.nan
  in
  let samples_td = Array.init np (fun i -> Array.init ns (sample fst i)) in
  let samples_sout = Array.init np (fun i -> Array.init ns (sample snd i)) in
  (* Moments over the survivors of each point.  With no failures the
     survivor array IS the sample array, so the statistics are
     unchanged bit for bit. *)
  let survivors samples i =
    let row = samples.(i) in
    let n_fail =
      List.length (List.filter (fun (p, _) -> p = i) !failed)
    in
    if n_fail = 0 then row
    else begin
      let out = Array.make (ns - n_fail) 0.0 in
      let k = ref 0 in
      Array.iteri
        (fun j v ->
          if not (List.mem (i, j) !failed) then begin
            out.(!k) <- v;
            incr k
          end)
        row;
      out
    end
  in
  let moment f samples = Array.init np (fun i -> f (survivors samples i)) in
  {
    points;
    mu_td = moment Describe.mean samples_td;
    sigma_td = moment Describe.std samples_td;
    mu_sout = moment Describe.mean samples_sout;
    sigma_sout = moment Describe.std samples_sout;
    samples_td;
    samples_sout;
    failed = !failed;
    cost = Harness.sim_count () - before;
  }

type stat_errors = {
  e_mu_td : float;
  e_sigma_td : float;
  e_mu_sout : float;
  e_sigma_sout : float;
}

let evaluate pop base =
  let n = Array.length base.points in
  if n = 0 then Slc_obs.Slc_error.invalid_input ~site:"Statistical.evaluate" "empty baseline";
  let acc_mu_td = ref 0.0
  and acc_sg_td = ref 0.0
  and acc_mu_so = ref 0.0
  and acc_sg_so = ref 0.0 in
  Array.iteri
    (fun i pt ->
      let td = predict_samples pop pt ~td:true in
      let so = predict_samples pop pt ~td:false in
      let mu_td = Describe.mean td and sg_td = Describe.std td in
      let mu_so = Describe.mean so and sg_so = Describe.std so in
      acc_mu_td :=
        !acc_mu_td +. (Float.abs (mu_td -. base.mu_td.(i)) /. base.mu_td.(i));
      acc_sg_td :=
        !acc_sg_td
        +. (Float.abs (sg_td -. base.sigma_td.(i)) /. base.sigma_td.(i));
      acc_mu_so :=
        !acc_mu_so
        +. (Float.abs (mu_so -. base.mu_sout.(i)) /. base.mu_sout.(i));
      acc_sg_so :=
        !acc_sg_so
        +. (Float.abs (sg_so -. base.sigma_sout.(i)) /. base.sigma_sout.(i)))
    base.points;
  let nf = float_of_int n in
  {
    e_mu_td = !acc_mu_td /. nf;
    e_sigma_td = !acc_sg_td /. nf;
    e_mu_sout = !acc_mu_so /. nf;
    e_sigma_sout = !acc_sg_so /. nf;
  }
