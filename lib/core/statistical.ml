module Process = Slc_device.Process
module Harness = Slc_cell.Harness
module Describe = Slc_prob.Describe

type method_ = Bayes of Prior.pair | Lse | Lut

let method_label = function
  | Bayes _ -> "model+bayes"
  | Lse -> "model+lse"
  | Lut -> "lookup-table"

type population = {
  meth : method_;
  seeds : Process.seed array;
  train_cost : int;
  predict_td : Process.seed -> Input_space.point -> float;
  predict_sout : Process.seed -> Input_space.point -> float;
}

type design = Curated | Random_per_seed of Slc_prob.Rng.t

(* One LM scratch workspace per worker domain, reused across every fit
   that domain performs. *)
let lm_slot = Slc_num.Parallel.Slot.make Slc_num.Optimize.lm_workspace

let extract_population_design ~design ~method_ ~tech ~arc ~seeds ~budget =
  if Array.length seeds = 0 then
    invalid_arg "Statistical.extract_population: no seeds";
  if budget < 1 then invalid_arg "Statistical.extract_population: budget < 1";
  let before = Harness.sim_count () in
  let ns = Array.length seeds in
  (* Per-seed predictors, keyed by seed index. *)
  let predictors =
    match method_ with
    | Lut ->
      (* The LUT builds its own grid; the design choice does not apply. *)
      Slc_num.Parallel.map
        (fun seed -> Char_flow.train_lut ~seed tech arc ~budget)
        seeds
    | Bayes _ | Lse ->
      let per_seed_points =
        match design with
        | Curated ->
          let pts = Input_space.fitting_points tech ~k:budget in
          Array.make ns pts
        | Random_per_seed rng ->
          (* split_ix is a pure function of (rng state, index): each
             seed's design is deterministic no matter which domain
             evaluates it, in what order. *)
          Array.map
            (fun seed ->
              Input_space.random_fitting_points_rng
                (Slc_prob.Rng.split_ix rng seed.Process.index)
                tech ~k:budget)
            seeds
      in
      (* All (seed x point) simulations as one flat batch: individual
         simulations are the scheduling unit, so a seed whose windows
         retry does not serialize the seeds behind it. *)
      let flat =
        Slc_num.Parallel.map
          (fun idx ->
            let si = idx / budget and pi = idx mod budget in
            Harness.simulate ~seed:seeds.(si) tech arc
              per_seed_points.(si).(pi))
          (Array.init (ns * budget) Fun.id)
      in
      let datasets =
        Array.init ns (fun si ->
            let m pi = flat.((si * budget) + pi) in
            let cost = ref 0 in
            for pi = 0 to budget - 1 do
              (* Each attempt of the retry loop is one simulator run. *)
              cost := !cost + (m pi).Harness.retries + 1
            done;
            {
              Char_flow.arc;
              points = per_seed_points.(si);
              td = Array.init budget (fun pi -> (m pi).Harness.td);
              sout = Array.init budget (fun pi -> (m pi).Harness.sout);
              cost = !cost;
            })
      in
      (* Per-seed fits, each on a worker-owned LM workspace. *)
      Slc_num.Parallel.map
        (fun si ->
          let workspace = Slc_num.Parallel.Slot.get lm_slot in
          let seed = seeds.(si) in
          match method_ with
          | Bayes prior ->
            Char_flow.train_bayes_on ~workspace ~seed ~prior tech
              datasets.(si)
          | Lse -> Char_flow.train_lse_on ~workspace ~seed tech datasets.(si)
          | Lut -> assert false)
        (Array.init ns Fun.id)
  in
  let find seed =
    if seed.Process.index < 0 || seed.Process.index >= Array.length seeds then
      invalid_arg "Statistical.population: unknown seed";
    predictors.(seed.Process.index)
  in
  {
    meth = method_;
    seeds;
    train_cost = Harness.sim_count () - before;
    predict_td = (fun seed pt -> (find seed).Char_flow.predict_td pt);
    predict_sout = (fun seed pt -> (find seed).Char_flow.predict_sout pt);
  }

let extract_population ~method_ ~tech ~arc ~seeds ~budget =
  extract_population_design ~design:Curated ~method_ ~tech ~arc ~seeds ~budget

let predict_samples pop pt ~td =
  Array.map
    (fun seed ->
      if td then pop.predict_td seed pt else pop.predict_sout seed pt)
    pop.seeds

type baseline = {
  points : Input_space.point array;
  mu_td : float array;
  sigma_td : float array;
  mu_sout : float array;
  sigma_sout : float array;
  samples_td : float array array;
  samples_sout : float array array;
  cost : int;
}

let monte_carlo_baseline ~tech ~arc ~seeds ~points =
  if Array.length seeds < 2 then
    invalid_arg "Statistical.monte_carlo_baseline: need >= 2 seeds";
  let before = Harness.sim_count () in
  let np = Array.length points in
  let ns = Array.length seeds in
  (* Simulate each (point, seed) once, reading both metrics.  The work
     list is flattened to individual simulations so the dynamically
     scheduled parallel map can balance them across domains even when
     some (point, seed) pairs retry with longer windows. *)
  let flat =
    Slc_num.Parallel.map
      (fun idx ->
        let pt = points.(idx / ns) and seed = seeds.(idx mod ns) in
        let m = Harness.simulate ~seed tech arc pt in
        (m.Harness.td, m.Harness.sout))
      (Array.init (np * ns) Fun.id)
  in
  let samples_td =
    Array.init np (fun i -> Array.init ns (fun j -> fst flat.((i * ns) + j)))
  in
  let samples_sout =
    Array.init np (fun i -> Array.init ns (fun j -> snd flat.((i * ns) + j)))
  in
  {
    points;
    mu_td = Array.map Describe.mean samples_td;
    sigma_td = Array.map Describe.std samples_td;
    mu_sout = Array.map Describe.mean samples_sout;
    sigma_sout = Array.map Describe.std samples_sout;
    samples_td;
    samples_sout;
    cost = Harness.sim_count () - before;
  }

type stat_errors = {
  e_mu_td : float;
  e_sigma_td : float;
  e_mu_sout : float;
  e_sigma_sout : float;
}

let evaluate pop base =
  let n = Array.length base.points in
  if n = 0 then invalid_arg "Statistical.evaluate: empty baseline";
  let acc_mu_td = ref 0.0
  and acc_sg_td = ref 0.0
  and acc_mu_so = ref 0.0
  and acc_sg_so = ref 0.0 in
  Array.iteri
    (fun i pt ->
      let td = predict_samples pop pt ~td:true in
      let so = predict_samples pop pt ~td:false in
      let mu_td = Describe.mean td and sg_td = Describe.std td in
      let mu_so = Describe.mean so and sg_so = Describe.std so in
      acc_mu_td :=
        !acc_mu_td +. (Float.abs (mu_td -. base.mu_td.(i)) /. base.mu_td.(i));
      acc_sg_td :=
        !acc_sg_td
        +. (Float.abs (sg_td -. base.sigma_td.(i)) /. base.sigma_td.(i));
      acc_mu_so :=
        !acc_mu_so
        +. (Float.abs (mu_so -. base.mu_sout.(i)) /. base.mu_sout.(i));
      acc_sg_so :=
        !acc_sg_so
        +. (Float.abs (sg_so -. base.sigma_sout.(i)) /. base.sigma_sout.(i)))
    base.points;
  let nf = float_of_int n in
  {
    e_mu_td = !acc_mu_td /. nf;
    e_sigma_td = !acc_sg_td /. nf;
    e_mu_sout = !acc_mu_so /. nf;
    e_sigma_sout = !acc_sg_so /. nf;
  }
