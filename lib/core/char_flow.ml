module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Equivalent = Slc_cell.Equivalent
module Nldm = Slc_cell.Nldm

type dataset = {
  arc : Arc.t;
  points : Input_space.point array;
  td : float array;
  sout : float array;
  cost : int;
}

let simulate_dataset ?seed tech arc points =
  let before = Harness.sim_count () in
  (* One lane per point, all for the same seed, advanced in lockstep by
     the batch transient engine.  Failure semantics match the
     [Parallel.map] this replaces: a single failing point re-raises its
     exception unwrapped, several raise [Parallel.Failures]. *)
  let seed = Option.value seed ~default:Process.nominal in
  let results =
    Harness.simulate_batch tech arc (Array.map (fun p -> (seed, p)) points)
  in
  (match
     List.filter_map
       (function Error e -> Some e | Ok _ -> None)
       (Array.to_list results)
   with
  | [] -> ()
  | [ e ] -> raise e
  | e :: rest -> raise (Slc_num.Parallel.Failures (e, rest)));
  let measured =
    Array.map (function Ok m -> m | Error _ -> assert false) results
  in
  {
    arc;
    points;
    td = Array.map (fun m -> m.Harness.td) measured;
    sout = Array.map (fun m -> m.Harness.sout) measured;
    cost = Harness.sim_count () - before;
  }

let ieff_at ?(seed = Process.nominal) tech arc (p : Input_space.point) =
  Equivalent.ieff_with_seed tech seed arc ~vdd:p.Harness.vdd

let observations_of_dataset ?(seed = Process.nominal) tech ds ~metric =
  let values =
    match metric with Prior.Delay -> ds.td | Prior.Slew -> ds.sout
  in
  Array.init (Array.length ds.points) (fun i ->
      {
        Extract_lse.point = ds.points.(i);
        ieff = ieff_at ~seed tech ds.arc ds.points.(i);
        value = values.(i);
      })

type model =
  | Timing_pair of { td : Timing_model.params; sout : Timing_model.params }
  | Nldm_table of Slc_cell.Nldm.t
  | Gpr_pair of { td : Gpr.model; sout : Gpr.model }
  | Opaque

type predictor = {
  label : string;
  train_cost : int;
  model : model;
  predict_td : Input_space.point -> float;
  predict_sout : Input_space.point -> float;
}

let model_predictor ~label ~seed ~tech ~arc ~cost p_td p_sout =
  {
    label;
    train_cost = cost;
    model = Timing_pair { td = p_td; sout = p_sout };
    predict_td =
      (fun pt -> Timing_model.eval p_td ~ieff:(ieff_at ?seed tech arc pt) pt);
    predict_sout =
      (fun pt -> Timing_model.eval p_sout ~ieff:(ieff_at ?seed tech arc pt) pt);
  }

let table_predictor ~label ~cost table =
  {
    label;
    train_cost = cost;
    model = Nldm_table table;
    predict_td = (fun pt -> Nldm.lookup_td table pt);
    predict_sout = (fun pt -> Nldm.lookup_sout table pt);
  }

(* The closures only read the fitted posteriors (immutable) and call
   [Gpr.predict] without a workspace, so a predictor may be shared
   across query threads/domains like the analytical ones. *)
let gpr_predictor ~label ~cost (f_td : Gpr.t) (f_sout : Gpr.t) =
  {
    label;
    train_cost = cost;
    model = Gpr_pair { td = Gpr.model f_td; sout = Gpr.model f_sout };
    predict_td = (fun pt -> Gpr.predict f_td pt);
    predict_sout = (fun pt -> Gpr.predict f_sout pt);
  }

let predictor_of_model ?seed ~label ~train_cost tech arc model =
  match model with
  | Timing_pair { td; sout } ->
    model_predictor ~label ~seed ~tech ~arc ~cost:train_cost td sout
  | Nldm_table table -> table_predictor ~label ~cost:train_cost table
  | Gpr_pair { td; sout } ->
    (* [Gpr.refit] is bitwise: a predictor rebuilt from the stored
       training set answers exactly like the original. *)
    gpr_predictor ~label ~cost:train_cost (Gpr.refit tech td)
      (Gpr.refit tech sout)
  | Opaque ->
    Slc_obs.Slc_error.invalid_input ~site:"Char_flow.predictor_of_model" "Opaque models cannot be rebuilt"

let fitting_points_for ?points tech ~k =
  match points with
  | None -> Input_space.fitting_points tech ~k
  | Some pts ->
    if Array.length pts <> k then
      Slc_obs.Slc_error.invalid_input ~site:"Char_flow" "points override must have length k";
    pts

let train_bayes_on ?workspace ?seed ~(prior : Prior.pair) tech ds =
  let obs_td = observations_of_dataset ?seed tech ds ~metric:Prior.Delay in
  let obs_sout = observations_of_dataset ?seed tech ds ~metric:Prior.Slew in
  let p_td =
    Map_fit.fit_params ?workspace ~prior:prior.Prior.delay ~tech obs_td
  in
  let p_sout =
    Map_fit.fit_params ?workspace ~prior:prior.Prior.slew ~tech obs_sout
  in
  model_predictor ~label:"model+bayes" ~seed ~tech ~arc:ds.arc ~cost:ds.cost
    p_td p_sout

let train_bayes ?seed ?points ~prior tech arc ~k =
  let points = fitting_points_for ?points tech ~k in
  let ds = simulate_dataset ?seed tech arc points in
  train_bayes_on ?seed ~prior tech ds

let train_lse_on ?workspace ?seed tech ds =
  let obs_td = observations_of_dataset ?seed tech ds ~metric:Prior.Delay in
  let obs_sout = observations_of_dataset ?seed tech ds ~metric:Prior.Slew in
  let p_td = Extract_lse.fit ?workspace obs_td in
  let p_sout = Extract_lse.fit ?workspace obs_sout in
  model_predictor ~label:"model+lse" ~seed ~tech ~arc:ds.arc ~cost:ds.cost
    p_td p_sout

let train_lse ?seed ?points tech arc ~k =
  let points = fitting_points_for ?points tech ~k in
  let ds = simulate_dataset ?seed tech arc points in
  train_lse_on ?seed tech ds

let train_rsm ?seed ?points tech arc ~k =
  let points = fitting_points_for ?points tech ~k in
  let ds = simulate_dataset ?seed tech arc points in
  let samples values =
    Array.init (Array.length ds.points) (fun i -> (ds.points.(i), values.(i)))
  in
  let rsm_td = Rsm.fit tech (samples ds.td) in
  let rsm_sout = Rsm.fit tech (samples ds.sout) in
  {
    label = "rsm";
    train_cost = ds.cost;
    model = Opaque;
    predict_td = Rsm.eval rsm_td;
    predict_sout = Rsm.eval rsm_sout;
  }

let gpr_label = "model+gpr"

let train_gpr_on ?workspace tech ds =
  let f_td = Gpr.fit ?workspace tech ds.points ds.td in
  let f_sout = Gpr.fit ?workspace tech ds.points ds.sout in
  gpr_predictor ~label:gpr_label ~cost:ds.cost f_td f_sout

let train_lut ?seed tech arc ~budget =
  let box = Tech.input_box tech in
  let levels = Nldm.design_levels ~budget ~box in
  let before = Harness.sim_count () in
  let table = Nldm.build ?seed tech arc ~levels in
  table_predictor ~label:"lookup-table"
    ~cost:(Harness.sim_count () - before)
    table

type errors = { td_err : float; sout_err : float }

let mean_abs_rel pred actual =
  let n = Array.length actual in
  if n = 0 then Slc_obs.Slc_error.invalid_input ~site:"Char_flow.evaluate" "empty dataset";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs ((pred.(i) -. actual.(i)) /. actual.(i))
  done;
  !acc /. float_of_int n

let evaluate p ds =
  let td_pred = Array.map p.predict_td ds.points in
  let sout_pred = Array.map p.predict_sout ds.points in
  {
    td_err = mean_abs_rel td_pred ds.td;
    sout_err = mean_abs_rel sout_pred ds.sout;
  }

let default_gpr_threshold = 0.05

let with_gpr_fallback ?workspace ~threshold tech ds p =
  let e = evaluate p ds in
  if Float.max e.td_err e.sout_err > threshold then begin
    Slc_obs.Telemetry.incr Slc_obs.Telemetry.gpr_fallbacks;
    train_gpr_on ?workspace tech ds
  end
  else p

let budget_to_reach ~curve ~target =
  (* The curve need not be monotone; find the first crossing going up
     in budget, log-interpolating between bracketing points. *)
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) curve in
  let rec go prev = function
    | [] -> None
    | (b, e) :: rest -> (
      if e <= target then
        match prev with
        | None -> Some (float_of_int b)
        | Some (b0, e0) when e0 > target ->
          (* log-linear interpolation in budget *)
          let lb0 = log (float_of_int b0) and lb1 = log (float_of_int b) in
          let t = (e0 -. target) /. Float.max 1e-12 (e0 -. e) in
          Some (exp (lb0 +. (t *. (lb1 -. lb0))))
        | Some _ -> Some (float_of_int b)
      else go (Some (b, e)) rest)
  in
  go None sorted

type reach = Reached of float | At_least of float

let speedup_vs ~budget ~curve ~target =
  match budget_to_reach ~curve ~target with
  | Some b -> Reached (b /. budget)
  | None ->
    let max_budget =
      List.fold_left (fun acc (b, _) -> max acc b) 0 curve
    in
    At_least (float_of_int max_budget /. budget)

let pp_reach ppf = function
  | Reached s -> Format.fprintf ppf "%.1fx" s
  | At_least s -> Format.fprintf ppf ">%.1fx (never reached in sweep)" s
