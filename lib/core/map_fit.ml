module Mat = Slc_num.Mat
module Vec = Slc_num.Vec
module Linalg = Slc_num.Linalg
module Optimize = Slc_num.Optimize
module Mvn = Slc_prob.Mvn

type result = {
  params : Timing_model.params;
  posterior_cost : float;
  prior_mahalanobis : float;
  data_cost : float;
}

(* Inverse of a lower-triangular matrix, column by column. *)
let lower_inverse l =
  let n = Mat.rows l in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.make n 0.0 in
    e.(j) <- 1.0;
    let x = Linalg.lower_solve l e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv

let fit ?workspace ~(prior : Prior.t) ~tech obs =
  let mvn = prior.Prior.mvn in
  let mu0 = mvn.Mvn.mu in
  let l0 = mvn.Mvn.chol in
  let l0_inv = lower_inverse l0 in
  let n_p = Timing_model.n_params in
  let m = Array.length obs in
  let sqrt_betas =
    Array.map
      (fun (o : Extract_lse.observation) ->
        sqrt (Prior.beta_at prior tech o.Extract_lse.point))
      obs
  in
  let residuals v =
    let p = Timing_model.of_vec v in
    let prior_part = Mat.mul_vec l0_inv (Vec.sub v mu0) in
    let data_part =
      Array.mapi
        (fun i (o : Extract_lse.observation) ->
          sqrt_betas.(i)
          *. Timing_model.rel_residual p ~ieff:o.Extract_lse.ieff
               o.Extract_lse.point ~observed:o.Extract_lse.value)
        obs
    in
    Array.append prior_part data_part
  in
  let jacobian v =
    let p = Timing_model.of_vec v in
    Mat.init (n_p + m) n_p (fun i j ->
        if i < n_p then Mat.get l0_inv i j
        else begin
          let o = obs.(i - n_p) in
          let g =
            Timing_model.grad p ~ieff:o.Extract_lse.ieff o.Extract_lse.point
          in
          sqrt_betas.(i - n_p) *. g.(j) /. o.Extract_lse.value
        end)
  in
  let lm =
    Optimize.levenberg_marquardt ?workspace ~residuals ~jacobian
      ~x0:(Vec.copy mu0) ()
  in
  let r = residuals lm.Optimize.x in
  let prior_sq = ref 0.0 and data_sq = ref 0.0 in
  Array.iteri
    (fun i x ->
      if i < n_p then prior_sq := !prior_sq +. (x *. x)
      else data_sq := !data_sq +. (x *. x))
    r;
  {
    params = Timing_model.of_vec lm.Optimize.x;
    posterior_cost = lm.Optimize.cost;
    prior_mahalanobis = !prior_sq;
    data_cost = !data_sq;
  }

let fit_params ?workspace ~prior ~tech obs =
  (fit ?workspace ~prior ~tech obs).params

(* Ridge standing in for the prior precision in the prior-free (LSE)
   regime: tiny against the squared relative gradients it is added to,
   so it only breaks exact singularity of the information matrix. *)
let lse_ridge = 1e-12

let information ?prior ~tech ~at obs =
  let n_p = Timing_model.n_params in
  let a =
    match prior with
    | Some (p : Prior.t) ->
      (* Σ0⁻¹ = L0⁻ᵀ L0⁻¹ from the prior's Cholesky factor. *)
      let l0_inv = lower_inverse p.Prior.mvn.Mvn.chol in
      let out = Mat.create n_p n_p in
      Mat.gram_into l0_inv out;
      out
    | None ->
      let out = Mat.create n_p n_p in
      for i = 0 to n_p - 1 do
        Mat.set out i i lse_ridge
      done;
      out
  in
  Array.iter
    (fun (o : Extract_lse.observation) ->
      let beta =
        match prior with
        | Some p -> Prior.beta_at p tech o.Extract_lse.point
        | None -> 1.0
      in
      let g = Timing_model.grad at ~ieff:o.Extract_lse.ieff o.Extract_lse.point in
      for i = 0 to n_p - 1 do
        let gi = g.(i) /. o.Extract_lse.value in
        for j = 0 to n_p - 1 do
          Mat.set a i j
            (Mat.get a i j +. (beta *. gi *. (g.(j) /. o.Extract_lse.value)))
        done
      done)
    obs;
  a

let predictive_gain ?prior ~tech ~information ~at ~ieff point =
  let value = Timing_model.eval at ~ieff point in
  let beta =
    match prior with Some p -> Prior.beta_at p tech point | None -> 1.0
  in
  let g = Timing_model.grad at ~ieff point in
  let gt = Array.map (fun gi -> gi /. value) g in
  let x = Linalg.solve_spd information gt in
  beta *. Vec.dot gt x
