(** The library input space ξ = (Sin, Cload, Vdd) of a technology:
    normalization, validation sets and fitting-point designs.

    Normalized coordinates (unit cube) are what cross-technology
    learning operates on: the same normalized condition maps to
    technology-appropriate absolute conditions in every node, which is
    how precision learned on old nodes transfers to a new one. *)

type point = Slc_cell.Harness.point

val box : Slc_device.Tech.t -> Slc_prob.Sampling.box

val normalize : Slc_device.Tech.t -> point -> Slc_num.Vec.t
(** Into the unit cube (values outside the box land outside [0,1]). *)

val denormalize : Slc_device.Tech.t -> Slc_num.Vec.t -> point

val validation_set : ?n:int -> seed:int -> Slc_device.Tech.t -> point array
(** [n] (default 1000) uniform random conditions — the paper's Fig. 5
    baseline spread.  Deterministic in [seed]. *)

val fitting_points : Slc_device.Tech.t -> k:int -> point array
(** The first [k] points of a deterministic, identifiability-oriented
    design: a hand-ordered spread covering the corners of the
    (Vdd, Cload, Sin) box first, continued with a Halton sequence.
    Methods that fit with [k] samples all receive the same points, so
    method comparisons are paired. *)

val random_fitting_points :
  Slc_device.Tech.t -> k:int -> seed:int -> point array
(** [k] conditions drawn uniformly from the box — the "random sampling"
    the paper's baselines use.  Deterministic in [seed]. *)

val random_fitting_points_rng :
  Slc_prob.Rng.t -> Slc_device.Tech.t -> k:int -> point array
(** [random_fitting_points] drawing from a caller-supplied generator —
    combined with [Rng.split_ix] this gives every process seed its own
    deterministic design regardless of evaluation order. *)

val unit_grid : levels:int array -> Slc_num.Vec.t array
(** Full-factorial grid on the unit cube (inclusive of 0.05/0.95-margin
    bounds to stay inside every technology's well-behaved region). *)
