let table ppf ~header rows =
  let all = header :: rows in
  let n_cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some s -> max acc (String.length s)
        | None -> acc)
      0 all
  in
  let widths = Array.init n_cols width in
  let render row =
    let cells =
      List.mapi
        (fun c s -> Printf.sprintf "%-*s" widths.(c) s)
        row
    in
    String.concat "  " cells
  in
  Format.fprintf ppf "%s@." (render header);
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "%s@." rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) rows

let series ppf ~title ~x_label ~xs named =
  Format.fprintf ppf "== %s ==@." title;
  let header = x_label :: List.map fst named in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i x ->
           Printf.sprintf "%g" x
           :: List.map
                (fun (_, ys) ->
                  if i < Array.length ys then Printf.sprintf "%.3f" ys.(i)
                  else "-")
                named)
         xs)
  in
  table ppf ~header rows

let bar ~width value vmax =
  if width < 1 then Slc_obs.Slc_error.invalid_input ~site:"Report.bar" "width must be >= 1";
  let frac =
    if vmax <= 0.0 then 0.0 else Float.max 0.0 (Float.min 1.0 (value /. vmax))
  in
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '

let pct x = Printf.sprintf "%.2f%%" (100.0 *. x)

let ps x = Printf.sprintf "%.2fps" (x *. 1e12)
