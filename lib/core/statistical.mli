(** Statistical library characterization (paper Section IV, last part,
    and the Section V 28-nm example).

    [N_sample] process seeds are drawn.  For each seed the chosen method
    is trained with its budget of per-seed simulations; pushing the
    per-seed models through any input condition yields the predicted
    delay/slew distribution there.  The Monte-Carlo baseline simulates
    every (validation point x seed) pair. *)

type method_ =
  | Bayes of Prior.pair  (** MAP extraction under the historical prior *)
  | Lse                  (** plain least-squares extraction *)
  | Lut                  (** per-seed NLDM table *)

val method_label : method_ -> string

type population = {
  meth : method_;
  seeds : Slc_device.Process.seed array;
  train_cost : int;  (** total simulator runs over all seeds *)
  predict_td : Slc_device.Process.seed -> Input_space.point -> float;
  predict_sout : Slc_device.Process.seed -> Input_space.point -> float;
}

type design =
  | Curated
      (** every seed fits on the same deterministic
          {!Input_space.fitting_points} design *)
  | Random_per_seed of Slc_prob.Rng.t
      (** seed [i] fits on points drawn from [Rng.split_ix rng i] — a
          pure per-index derivation, so the designs (and therefore all
          results) are bitwise independent of domain count and
          scheduling order, and the supplied generator is not
          advanced *)

val extract_population :
  method_:method_ ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  population
(** Trains the method independently for every seed with [budget]
    simulator runs each ([k] fitting points for model methods, grid
    size for LUT), on the [Curated] design.

    All (seed × point) simulations go through the worker pool as one
    flat batch, then the per-seed fits run as a second batch with one
    LM workspace per worker domain. *)

val extract_population_design :
  design:design ->
  method_:method_ ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  population
(** {!extract_population} with an explicit fitting-point design (the
    design choice is ignored by [Lut], which builds its own grid). *)

val predict_samples :
  population -> Input_space.point -> td:bool -> float array
(** Per-seed predicted values at one condition ([td:false] gives output
    slew). *)

type baseline = {
  points : Input_space.point array;
  mu_td : float array;
  sigma_td : float array;
  mu_sout : float array;
  sigma_sout : float array;
  samples_td : float array array;   (** [point][seed] raw values *)
  samples_sout : float array array;
  cost : int;
}

val monte_carlo_baseline :
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  points:Input_space.point array ->
  baseline

type stat_errors = {
  e_mu_td : float;     (** mean relative |µ̂ - µ| over points *)
  e_sigma_td : float;  (** mean relative |σ̂ - σ| / σ over points *)
  e_mu_sout : float;
  e_sigma_sout : float;
}

val evaluate : population -> baseline -> stat_errors
(** Paper Eqs. 16–19 in relative form. *)
