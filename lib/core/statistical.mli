(** Statistical library characterization (paper Section IV, last part,
    and the Section V 28-nm example).

    [N_sample] process seeds are drawn.  For each seed the chosen method
    is trained with its budget of per-seed simulations; pushing the
    per-seed models through any input condition yields the predicted
    delay/slew distribution there.  The Monte-Carlo baseline simulates
    every (validation point x seed) pair. *)

type method_ =
  | Bayes of Prior.pair  (** MAP extraction under the historical prior *)
  | Lse                  (** plain least-squares extraction *)
  | Lut                  (** per-seed NLDM table *)

val method_label : method_ -> string

(** Per-seed extraction outcome. *)
type seed_status =
  | Seed_ok  (** every design point simulated; full-quality fit *)
  | Seed_degraded of int
      (** fit proceeded on the surviving design points; the payload is
          the number of (seed, point) simulations that failed *)
  | Seed_failed of exn
      (** too few surviving points to fit (or, for [Lut], the grid
          build failed); the payload is the first failure.  Predicting
          through this seed re-raises it. *)

type population = {
  meth : method_;
  seeds : Slc_device.Process.seed array;
  status : seed_status array;
      (** per-seed outcome, indexed by [Process.index]; all [Seed_ok]
          when every simulation converged *)
  predictors : Char_flow.predictor option array;
      (** the per-seed trained predictors behind [predict_td]/
          [predict_sout], indexed like [status] ([None] = failed seed).
          Each predictor's {!Char_flow.model} is what the persistent
          store serializes. *)
  train_cost : int;  (** total simulator runs over all seeds *)
  predict_td : Slc_device.Process.seed -> Input_space.point -> float;
  predict_sout : Slc_device.Process.seed -> Input_space.point -> float;
}

type adaptive = {
  a_rng : Slc_prob.Rng.t;
      (** source of each seed's candidate pool, derived per seed with
          [Rng.split_ix] (pure; the generator is not advanced) *)
  a_candidates : int;
      (** candidate-pool size per seed; must be at least the budget *)
  a_gpr_threshold : float;
      (** mean |relative error| on the observed points above which (a)
          the acquisition switches from the parametric information
          gain to the GP surrogate's posterior variance, and (b) the
          final predictor falls back to a GPR model
          ({!Char_flow.with_gpr_fallback}) *)
}
(** Acquisition hyperparameters of the {!Adaptive} design.  All three
    enter the persistent store's population key, so stored adaptive
    populations can never be served to a run with different
    acquisition settings. *)

val adaptive_defaults : Slc_prob.Rng.t -> adaptive
(** 24 candidates, {!Char_flow.default_gpr_threshold}. *)

type design =
  | Curated
      (** every seed fits on the same deterministic
          {!Input_space.fitting_points} design *)
  | Random_per_seed of Slc_prob.Rng.t
      (** seed [i] fits on points drawn from [Rng.split_ix rng i] — a
          pure per-index derivation, so the designs (and therefore all
          results) are bitwise independent of domain count and
          scheduling order, and the supplied generator is not
          advanced *)
  | Adaptive of adaptive
      (** active learning (ROADMAP item 4): each seed's k points are
          chosen {e sequentially} from its candidate pool by expected
          information gain — refit the delay model on the observations
          so far, score every remaining candidate by
          {!Map_fit.predictive_gain} against the incremental MAP
          posterior information (or by {!Gpr.predict_var} once the
          analytical residuals exceed [a_gpr_threshold]), simulate the
          argmax, repeat.  Rounds advance all seeds in lockstep through
          one {!Slc_cell.Harness.simulate_batch} per round; every
          per-seed choice is a pure function of that seed's own
          sub-stream and observations, so results keep the
          [Random_per_seed] bitwise determinism guarantees.  Spends
          the same per-seed budget as the fixed designs but places it
          where the posterior is least certain — fewer simulations at
          equal mean/σ error (the [fig78/adaptive-budget] bench
          section measures exactly this). *)

val extract_population :
  ?min_points:int ->
  method_:method_ ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  unit ->
  population
(** Trains the method independently for every seed with [budget]
    simulator runs each ([k] fitting points for model methods, grid
    size for LUT), on the [Curated] design.

    All (seed × point) simulations go through the worker pool as one
    flat batch, then the per-seed fits run as a second batch with one
    LM workspace per worker domain.

    {b Graceful degradation}: a (seed, point) simulation that raises
    costs only that design point.  A seed keeps fitting while at least
    [min_points] (default 2) of its design points survive — reported
    [Seed_degraded] — and becomes [Seed_failed] below that.  Seeds
    with no failures take the byte-for-byte historical code path, so
    their fits are bitwise identical to a failure-free run. *)

val extract_population_design :
  ?min_points:int ->
  design:design ->
  method_:method_ ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  unit ->
  population
(** {!extract_population} with an explicit fitting-point design (the
    design choice is ignored by [Lut], which builds its own grid). *)

(** {2 Checkpointable decomposition}

    [Slc_store] resumes interrupted extractions by re-running only the
    seeds a checkpoint is missing.  That requires the extraction core
    in a subset-friendly shape: {!extract_seed_models} trains any seed
    subset (arrays are positional; per-seed designs still key off each
    seed's [Process.index], so a subset computes exactly what the full
    batch would), and {!assemble} packages per-seed results — fresh,
    resumed, or loaded — into a {!population}. *)

type seed_models = {
  sm_predictors : Char_flow.predictor option array;
      (** positional: entry [i] belongs to [seeds.(i)] of the call *)
  sm_status : seed_status array;
}

val extract_seed_models :
  ?min_points:int ->
  design:design ->
  method_:method_ ->
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  budget:int ->
  unit ->
  seed_models
(** The simulation-and-fitting core of {!extract_population_design},
    returning positional per-seed results instead of a population.
    Because every seed's design and fit depend only on that seed (the
    [Random_per_seed] design derives from [Process.index], not array
    position), running seeds in any grouping — one batch, many
    checkpointed batches, or a resumed remainder — produces bitwise
    identical per-seed predictors. *)

val assemble :
  method_:method_ ->
  seeds:Slc_device.Process.seed array ->
  predictors:Char_flow.predictor option array ->
  status:seed_status array ->
  train_cost:int ->
  population
(** Packages per-seed results into a {!population}.  [seeds] must be
    indexed by [Process.index] (i.e. [seeds.(i).index = i]), as
    {!Slc_device.Process.sample_batch} produces; [predictors] and
    [status] are positional and must have the same length.  Raises
    [Invalid_argument] on a length mismatch. *)

val predict_samples :
  population -> Input_space.point -> td:bool -> float array
(** Per-seed predicted values at one condition ([td:false] gives output
    slew).  [Seed_failed] seeds are skipped, so the array length is the
    number of surviving seeds. *)

val predict_density :
  population -> Input_space.point -> td:bool -> grid:int ->
  (float * float) array
(** The predicted delay (or slew, [td:false]) distribution at one
    condition, as [(value, density)] pairs on a [grid]-point KDE grid
    over the surviving seeds' predictions (the paper's Fig 9 curve, as
    a query).  Deterministic: same population and condition, bitwise
    same curve.  Raises through {!Slc_obs.Slc_error} when fewer than 2
    seeds survive or [grid < 2].  This is the re-entrant pdf entry
    point the characterization server answers [pdf] requests with. *)

type baseline = {
  points : Input_space.point array;
  mu_td : float array;
  sigma_td : float array;
  mu_sout : float array;
  sigma_sout : float array;
  samples_td : float array array;
      (** [point][seed] raw values; [nan] marks a failed pair *)
  samples_sout : float array array;
  failed : (int * int) list;
      (** (point index, seed index) pairs whose simulation raised;
          [[]] for a clean run *)
  cost : int;
}

val monte_carlo_baseline :
  tech:Slc_device.Tech.t ->
  arc:Slc_cell.Arc.t ->
  seeds:Slc_device.Process.seed array ->
  points:Input_space.point array ->
  baseline
(** Simulates every (point × seed) pair.  Pairs that raise are recorded
    in [failed] and excluded from the per-point moment estimates (the
    statistics run over the survivors); with no failures the result is
    bitwise identical to the historical behaviour. *)

type stat_errors = {
  e_mu_td : float;     (** mean relative |µ̂ - µ| over points *)
  e_sigma_td : float;  (** mean relative |σ̂ - σ| / σ over points *)
  e_mu_sout : float;
  e_sigma_sout : float;
}

val evaluate : population -> baseline -> stat_errors
(** Paper Eqs. 16–19 in relative form. *)
