type t = {
  scale : float;
  n_validation : int;
  n_validation_stat : int;
  n_seeds : int;
  n_seeds_fig9 : int;
  ks : int list;
  lut_budgets : int list;
  ks_stat : int list;
  lut_budgets_stat : int list;
  rng_seed : int;
}

let scaled scale base lo = max lo (int_of_float (float_of_int base *. scale))

let with_scale scale =
  if scale <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Config.with_scale" "scale must be > 0";
  {
    scale;
    n_validation = scaled scale 300 30;
    n_validation_stat = scaled scale 40 8;
    n_seeds = scaled scale 100 12;
    n_seeds_fig9 = scaled scale 160 16;
    ks = [ 1; 2; 3; 5; 10; 20; 50; 100 ];
    lut_budgets = [ 2; 4; 8; 12; 18; 27; 48; 64; 100 ];
    ks_stat = [ 1; 2; 3; 5; 7; 10; 20 ];
    lut_budgets_stat = [ 4; 8; 18; 32; 60 ];
    rng_seed = 42;
  }

let default () =
  let scale =
    match Sys.getenv_opt "SLC_SCALE" with
    | None -> 1.0
    | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ -> 1.0)
  in
  with_scale scale

let tiny =
  {
    scale = 0.05;
    n_validation = 20;
    n_validation_stat = 5;
    n_seeds = 6;
    n_seeds_fig9 = 8;
    ks = [ 2; 5 ];
    lut_budgets = [ 4; 12 ];
    ks_stat = [ 2 ];
    lut_budgets_stat = [ 4 ];
    rng_seed = 7;
  }
