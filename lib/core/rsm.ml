module Mat = Slc_num.Mat
module Linalg = Slc_num.Linalg

type t = {
  tech : Slc_device.Tech.t;
  degree : int;
  coeffs : float array;
}

let n_coeffs ~degree =
  match degree with
  | 0 -> 1
  | 1 -> 4
  | 2 -> 10
  | _ -> Slc_obs.Slc_error.invalid_input ~site:"Rsm.n_coeffs" "degree must be 0, 1 or 2"

(* Monomial basis over normalized coordinates u = (u0, u1, u2). *)
let basis ~degree u =
  match degree with
  | 0 -> [| 1.0 |]
  | 1 -> [| 1.0; u.(0); u.(1); u.(2) |]
  | 2 ->
    [|
      1.0; u.(0); u.(1); u.(2);
      u.(0) *. u.(0); u.(1) *. u.(1); u.(2) *. u.(2);
      u.(0) *. u.(1); u.(0) *. u.(2); u.(1) *. u.(2);
    |]
  | _ -> Slc_obs.Slc_error.invalid_input ~site:"Rsm.basis" "degree must be 0, 1 or 2"

let degree_for n = if n >= 10 then 2 else if n >= 4 then 1 else 0

let fit tech samples =
  let n = Array.length samples in
  if n = 0 then Slc_obs.Slc_error.invalid_input ~site:"Rsm.fit" "no samples";
  Array.iter
    (fun (_, y) -> if y <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Rsm.fit" "non-positive value")
    samples;
  let degree = degree_for n in
  let m = n_coeffs ~degree in
  (* Relative least squares: divide each row and target by y. *)
  let a =
    Mat.init n m (fun i j ->
        let point, y = samples.(i) in
        let u = Input_space.normalize tech point in
        (basis ~degree u).(j) /. y)
  in
  let b = Array.make n 1.0 in
  let coeffs = Linalg.solve_least_squares a b in
  { tech; degree; coeffs }

let degree t = t.degree

let eval t point =
  let u = Input_space.normalize t.tech point in
  let phi = basis ~degree:t.degree u in
  let acc = ref 0.0 in
  Array.iteri (fun j c -> acc := !acc +. (c *. phi.(j))) t.coeffs;
  !acc

let avg_abs_rel_error t samples =
  if Array.length samples = 0 then Slc_obs.Slc_error.invalid_input ~site:"Rsm.avg_abs_rel_error" "empty";
  let acc = ref 0.0 in
  Array.iter
    (fun (point, y) -> acc := !acc +. Float.abs ((eval t point -. y) /. y))
    samples;
  !acc /. float_of_int (Array.length samples)
