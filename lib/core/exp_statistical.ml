module Tech = Slc_device.Tech
module Process = Slc_device.Process
module Cells = Slc_cell.Cells
module Arc = Slc_cell.Arc
module Harness = Slc_cell.Harness
module Describe = Slc_prob.Describe
module Kde = Slc_prob.Kde
module Stattest = Slc_prob.Stattest
module Rng = Slc_prob.Rng

type stat_curve = {
  budgets : int array;
  e_mu_td : float array;
  e_sigma_td : float array;
  e_mu_sout : float array;
  e_sigma_sout : float array;
}

type fig78_result = {
  tech_name : string;
  arc_names : string list;
  n_points : int;
  n_seeds : int;
  baseline_cost : int;
  bayes : stat_curve;
  lse : stat_curve;
  lut : stat_curve;
  speedup_mu_td : Char_flow.reach;
  speedup_sigma_td : Char_flow.reach;
  speedup_mu_sout : Char_flow.reach;
  speedup_sigma_sout : Char_flow.reach;
}

let default_arcs () =
  [
    Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall;
    Arc.find Cells.nand2 ~pin:"A" ~out_dir:Arc.Fall;
    Arc.find Cells.nor2 ~pin:"A" ~out_dir:Arc.Rise;
  ]

(* Average Statistical.stat_errors over arcs for each budget. *)
let curve_of budgets (per_arc : Statistical.stat_errors array list) =
  let n_b = Array.length budgets in
  let pick f b =
    let vals = List.map (fun arr -> f arr.(b)) per_arc in
    List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
  in
  {
    budgets;
    e_mu_td = Array.init n_b (pick (fun e -> e.Statistical.e_mu_td));
    e_sigma_td = Array.init n_b (pick (fun e -> e.Statistical.e_sigma_td));
    e_mu_sout = Array.init n_b (pick (fun e -> e.Statistical.e_mu_sout));
    e_sigma_sout = Array.init n_b (pick (fun e -> e.Statistical.e_sigma_sout));
  }

let speedup_at ~bayes_budgets ~bayes_errs ~other_budgets ~other_errs =
  (* Elbow = k=2 when present, else the first budget. *)
  let idx =
    match Array.to_list bayes_budgets |> List.mapi (fun i b -> (i, b)) with
    | l -> (
      match List.find_opt (fun (_, b) -> b = 2) l with
      | Some (i, _) -> i
      | None -> 0)
  in
  let target = bayes_errs.(idx) in
  let curve =
    Array.to_list
      (Array.mapi (fun i b -> (b, other_errs.(i))) other_budgets)
  in
  Char_flow.speedup_vs ~budget:(float_of_int bayes_budgets.(idx)) ~curve
    ~target

let fig78 ?(config = Config.default ()) ?(tech = Tech.n28) ?arcs ?prior () =
  let arcs = match arcs with Some a -> a | None -> default_arcs () in
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  let rng = Rng.create config.Config.rng_seed in
  let seeds = Process.sample_batch rng tech config.Config.n_seeds in
  let points =
    Input_space.validation_set ~n:config.Config.n_validation_stat
      ~seed:config.Config.rng_seed tech
  in
  let before = Harness.sim_count () in
  let baselines =
    List.map
      (fun arc -> Statistical.monte_carlo_baseline ~tech ~arc ~seeds ~points)
      arcs
  in
  let baseline_cost = Harness.sim_count () - before in
  let run_method budgets method_ =
    let per_arc =
      List.map2
        (fun arc base ->
          Array.map
            (fun budget ->
              let pop =
                Statistical.extract_population ~method_ ~tech ~arc ~seeds
                  ~budget ()
              in
              Statistical.evaluate pop base)
            budgets)
        arcs baselines
    in
    curve_of budgets per_arc
  in
  let ks = Array.of_list config.Config.ks_stat in
  let lut_budgets = Array.of_list config.Config.lut_budgets_stat in
  let bayes = run_method ks (Statistical.Bayes prior) in
  let lse = run_method ks Statistical.Lse in
  let lut = run_method lut_budgets Statistical.Lut in
  {
    tech_name = tech.Tech.name;
    arc_names = List.map Arc.name arcs;
    n_points = Array.length points;
    n_seeds = Array.length seeds;
    baseline_cost;
    bayes;
    lse;
    lut;
    speedup_mu_td =
      speedup_at ~bayes_budgets:ks ~bayes_errs:bayes.e_mu_td
        ~other_budgets:lut_budgets ~other_errs:lut.e_mu_td;
    speedup_sigma_td =
      speedup_at ~bayes_budgets:ks ~bayes_errs:bayes.e_sigma_td
        ~other_budgets:lut_budgets ~other_errs:lut.e_sigma_td;
    speedup_mu_sout =
      speedup_at ~bayes_budgets:ks ~bayes_errs:bayes.e_mu_sout
        ~other_budgets:ks ~other_errs:lse.e_mu_sout;
    speedup_sigma_sout =
      speedup_at ~bayes_budgets:ks ~bayes_errs:bayes.e_sigma_sout
        ~other_budgets:ks ~other_errs:lse.e_sigma_sout;
  }

(* -------------------------------------------------------------- *)
(* Adaptive-budget experiment (ROADMAP item 4): does the sequential
   information-gain design reach the random design's accuracy with
   strictly fewer simulator runs?                                  *)

type adaptive_budget_result = {
  ab_tech_name : string;
  ab_arc_names : string list;
  ab_n_points : int;
  ab_n_seeds : int;
  ab_budgets : int array;
  ab_random : stat_curve;
  ab_adaptive : stat_curve;
  ab_random_sims : int array;
  ab_adaptive_sims : int array;
  ab_reference_budget : int;
  ab_reference_error : float;
  ab_match_budget : int option;
  ab_match_sims : int option;
  ab_sims_saved : int option;
  ab_gpr_fallbacks : int;
}

(* Worst of the four statistical error metrics at budget index [i] —
   "equal mean/sigma error" means no metric is allowed to regress. *)
let max_metric c i =
  Float.max
    (Float.max c.e_mu_td.(i) c.e_sigma_td.(i))
    (Float.max c.e_mu_sout.(i) c.e_sigma_sout.(i))

let adaptive_budget ?(config = Config.default ()) ?(tech = Tech.n28) ?arcs
    ?prior () =
  let arcs = match arcs with Some a -> a | None -> default_arcs () in
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  let rng = Rng.create config.Config.rng_seed in
  let seeds = Process.sample_batch rng tech config.Config.n_seeds in
  let points =
    Input_space.validation_set ~n:config.Config.n_validation_stat
      ~seed:config.Config.rng_seed tech
  in
  let baselines =
    List.map
      (fun arc -> Statistical.monte_carlo_baseline ~tech ~arc ~seeds ~points)
      arcs
  in
  (* Budget 1 cannot constrain a 4-parameter fit either way; start the
     sweep where the comparison is meaningful. *)
  let budgets =
    Array.of_list (List.filter (fun k -> k >= 2) config.Config.ks_stat)
  in
  let n_b = Array.length budgets in
  (* Both designs draw their per-seed points from the same generator
     state, so the comparison is paired: the adaptive design sees the
     random design's points as its candidate pool superset. *)
  let design_rng () = Rng.create (config.Config.rng_seed + 78) in
  let run design_of =
    let sims = Array.make n_b 0 in
    let per_arc =
      List.map2
        (fun arc base ->
          Array.mapi
            (fun bi budget ->
              let pop =
                Statistical.extract_population_design ~design:(design_of ())
                  ~method_:(Statistical.Bayes prior) ~tech ~arc ~seeds ~budget
                  ()
              in
              sims.(bi) <- sims.(bi) + pop.Statistical.train_cost;
              Statistical.evaluate pop base)
            budgets)
        arcs baselines
    in
    (curve_of budgets per_arc, sims)
  in
  let random, random_sims =
    run (fun () -> Statistical.Random_per_seed (design_rng ()))
  in
  let fallbacks_before = Slc_obs.Telemetry.read Slc_obs.Telemetry.gpr_fallbacks in
  let adaptive, adaptive_sims =
    run (fun () ->
        Statistical.Adaptive (Statistical.adaptive_defaults (design_rng ())))
  in
  let gpr_fallbacks =
    Slc_obs.Telemetry.read Slc_obs.Telemetry.gpr_fallbacks - fallbacks_before
  in
  (* Smallest adaptive budget whose worst metric is within [ref_err]. *)
  let smallest_match ref_err =
    let m = ref None in
    for i = n_b - 1 downto 0 do
      if max_metric adaptive i <= ref_err then m := Some i
    done;
    !m
  in
  (* Reference: the largest random budget whose accuracy the adaptive
     design attains with strictly fewer simulations.  At the top of the
     sweep both designs exhaust the candidate pool and converge, so the
     largest budget usually admits no savings; the interesting claim
     lives at the largest budget where one design still beats the
     other.  If no budget admits strict savings, fall back to the
     largest budget (the adaptive design then at best ties). *)
  let ref_i =
    let rec search i =
      if i <= 0 then n_b - 1
      else
        match smallest_match (max_metric random i) with
        | Some j when adaptive_sims.(j) < random_sims.(i) -> i
        | _ -> search (i - 1)
    in
    search (n_b - 1)
  in
  let ref_err = max_metric random ref_i in
  let match_i = ref (smallest_match ref_err) in
  {
    ab_tech_name = tech.Tech.name;
    ab_arc_names = List.map Arc.name arcs;
    ab_n_points = Array.length points;
    ab_n_seeds = Array.length seeds;
    ab_budgets = budgets;
    ab_random = random;
    ab_adaptive = adaptive;
    ab_random_sims = random_sims;
    ab_adaptive_sims = adaptive_sims;
    ab_reference_budget = budgets.(ref_i);
    ab_reference_error = ref_err;
    ab_match_budget = Option.map (fun i -> budgets.(i)) !match_i;
    ab_match_sims = Option.map (fun i -> adaptive_sims.(i)) !match_i;
    ab_sims_saved =
      Option.map (fun i -> random_sims.(ref_i) - adaptive_sims.(i)) !match_i;
    ab_gpr_fallbacks = gpr_fallbacks;
  }

let print_adaptive_budget ppf r =
  Format.fprintf ppf
    "Adaptive budgets: %s (%d arcs, %d points x %d seeds), bayes method@."
    r.ab_tech_name
    (List.length r.ab_arc_names)
    r.ab_n_points r.ab_n_seeds;
  Report.table ppf
    ~header:
      [ "k"; "random max-err"; "sims"; "adaptive max-err"; "sims" ]
    (Array.to_list
       (Array.mapi
          (fun i b ->
            [
              string_of_int b;
              Report.pct (max_metric r.ab_random i);
              string_of_int r.ab_random_sims.(i);
              Report.pct (max_metric r.ab_adaptive i);
              string_of_int r.ab_adaptive_sims.(i);
            ])
          r.ab_budgets));
  (match (r.ab_match_budget, r.ab_match_sims, r.ab_sims_saved) with
  | Some kb, Some sims, Some saved ->
    let ref_sims =
      let i = ref (Array.length r.ab_budgets - 1) in
      Array.iteri
        (fun j b -> if b = r.ab_reference_budget then i := j)
        r.ab_budgets;
      r.ab_random_sims.(!i)
    in
    Format.fprintf ppf
      "adaptive reaches random@@k=%d max error (%s) at k=%d: %d vs %d sims \
       (%d saved, %.0f%%)@."
      r.ab_reference_budget
      (Report.pct r.ab_reference_error)
      kb sims ref_sims saved
      (100.0 *. float_of_int saved /. float_of_int ref_sims)
  | _ ->
    Format.fprintf ppf
      "adaptive never reached the random design's max error (%s) in this \
       sweep@."
      (Report.pct r.ab_reference_error));
  if r.ab_gpr_fallbacks > 0 then
    Format.fprintf ppf "gpr fallbacks during adaptive sweep: %d@."
      r.ab_gpr_fallbacks

let print_stat_curve ppf name c =
  Report.table ppf
    ~header:
      [ "samples"; name ^ " E(muTd)"; "E(sigTd)"; "E(muSout)"; "E(sigSout)" ]
    (Array.to_list
       (Array.mapi
          (fun i b ->
            [
              string_of_int b;
              Report.pct c.e_mu_td.(i);
              Report.pct c.e_sigma_td.(i);
              Report.pct c.e_mu_sout.(i);
              Report.pct c.e_sigma_sout.(i);
            ])
          c.budgets))

let print_fig78 ppf r =
  Format.fprintf ppf
    "Fig 7/8: statistical characterization error, %s (%d arcs, %d points x %d seeds)@."
    r.tech_name (List.length r.arc_names) r.n_points r.n_seeds;
  Format.fprintf ppf "-- proposed model + Bayesian inference:@.";
  print_stat_curve ppf "bayes" r.bayes;
  Format.fprintf ppf "-- proposed model + LSE:@.";
  print_stat_curve ppf "lse" r.lse;
  Format.fprintf ppf "-- lookup table (per-seed):@.";
  print_stat_curve ppf "lut" r.lut;
  Format.fprintf ppf "baseline cost: %d sims@." r.baseline_cost;
  let show name r = Format.fprintf ppf "%s: %a@." name Char_flow.pp_reach r in
  show "speedup mu(Td) vs LUT (paper ~17x)" r.speedup_mu_td;
  show "speedup sigma(Td) vs LUT (paper ~20x)" r.speedup_sigma_td;
  show "speedup mu(Sout) vs LSE (paper ~18x)" r.speedup_mu_sout;
  show "speedup sigma(Sout) vs LSE (paper ~19x)" r.speedup_sigma_sout

type fig9_result = {
  point : Input_space.point;
  arc_name : string;
  n_seeds : int;
  k_bayes : int;
  lut_points : int;
  grid : float array;
  pdf_baseline : float array;
  pdf_bayes : float array;
  pdf_lut : float array;
  baseline_skewness : float;
  bayes_skewness : float;
  lut_skewness : float;
  ks_bayes : float;
  ks_lut : float;
  cost_baseline : int;
  cost_bayes : int;
  cost_lut : int;
}

let paper_fig9_point = { Harness.sin = 5.09e-12; cload = 1.67e-15; vdd = 0.734 }

let fig9 ?(config = Config.default ()) ?(tech = Tech.n28) ?arc ?point ?prior
    () =
  let arc =
    match arc with
    | Some a -> a
    | None -> Arc.find Cells.inv ~pin:"A" ~out_dir:Arc.Fall
  in
  let point = match point with Some p -> p | None -> paper_fig9_point in
  let prior =
    match prior with
    | Some p -> p
    | None -> Prior.learn_pair ~historical:(Tech.historical_for tech) ()
  in
  let rng = Rng.create (config.Config.rng_seed + 9) in
  let seeds = Process.sample_batch rng tech config.Config.n_seeds_fig9 in
  let cost_from f =
    let before = Harness.sim_count () in
    let x = f () in
    (x, Harness.sim_count () - before)
  in
  let baseline_samples, cost_baseline =
    cost_from (fun () ->
        Array.map
          (fun seed -> (Harness.simulate ~seed tech arc point).Harness.td)
          seeds)
  in
  let k_bayes = 7 and lut_points = 60 in
  let bayes_pop, cost_bayes =
    cost_from (fun () ->
        Statistical.extract_population ~method_:(Statistical.Bayes prior)
          ~tech ~arc ~seeds ~budget:k_bayes ())
  in
  let lut_pop, cost_lut =
    cost_from (fun () ->
        Statistical.extract_population ~method_:Statistical.Lut ~tech ~arc
          ~seeds ~budget:lut_points ())
  in
  let bayes_samples = Statistical.predict_samples bayes_pop point ~td:true in
  let lut_samples = Statistical.predict_samples lut_pop point ~td:true in
  let kde_base = Kde.fit baseline_samples in
  let kde_bayes = Kde.fit bayes_samples in
  let kde_lut = Kde.fit lut_samples in
  let grid = Kde.grid kde_base 80 in
  {
    point;
    arc_name = Arc.name arc;
    n_seeds = Array.length seeds;
    k_bayes;
    lut_points;
    grid;
    pdf_baseline = Kde.evaluate kde_base grid;
    pdf_bayes = Kde.evaluate kde_bayes grid;
    pdf_lut = Kde.evaluate kde_lut grid;
    baseline_skewness = Describe.skewness baseline_samples;
    bayes_skewness = Describe.skewness bayes_samples;
    lut_skewness = Describe.skewness lut_samples;
    ks_bayes = Stattest.ks_two_sample baseline_samples bayes_samples;
    ks_lut = Stattest.ks_two_sample baseline_samples lut_samples;
    cost_baseline;
    cost_bayes;
    cost_lut;
  }

let print_fig9 ppf r =
  Format.fprintf ppf "Fig 9: delay pdf at %a (%s, %d seeds)@." Harness.pp_point
    r.point r.arc_name r.n_seeds;
  Format.fprintf ppf
    "  method          sims  skewness  KS-vs-baseline@.";
  Format.fprintf ppf "  baseline (MC)  %5d  %8.3f  %s@." r.cost_baseline
    r.baseline_skewness "-";
  Format.fprintf ppf "  bayes (k=%d)    %5d  %8.3f  %.3f@." r.k_bayes
    r.cost_bayes r.bayes_skewness r.ks_bayes;
  Format.fprintf ppf "  lut (%d pts)   %5d  %8.3f  %.3f@." r.lut_points
    r.cost_lut r.lut_skewness r.ks_lut;
  (* ASCII densities, normalized to the tallest curve. *)
  let vmax =
    Array.fold_left Float.max 0.0
      (Array.concat [ r.pdf_baseline; r.pdf_bayes; r.pdf_lut ])
  in
  Format.fprintf ppf "  delay(ps)  baseline / bayes / lut@.";
  Array.iteri
    (fun i x ->
      if i mod 4 = 0 then
        Format.fprintf ppf "  %8.2f  |%s|%s|%s|@." (x *. 1e12)
          (Report.bar ~width:24 r.pdf_baseline.(i) vmax)
          (Report.bar ~width:24 r.pdf_bayes.(i) vmax)
          (Report.bar ~width:24 r.pdf_lut.(i) vmax))
    r.grid
