module Sampling = Slc_prob.Sampling
module Tech = Slc_device.Tech
module Harness = Slc_cell.Harness

type point = Harness.point

let box = Tech.input_box

let normalize tech (p : point) =
  Sampling.to_unit (box tech) (Harness.vec_of_point p)

let denormalize tech u =
  Harness.point_of_vec (Sampling.scale_unit (box tech) u)

let validation_set ?(n = 1000) ~seed tech =
  let rng = Slc_prob.Rng.create seed in
  Array.map Harness.point_of_vec (Sampling.random_box rng (box tech) n)

(* Hand-ordered unit-cube design: coordinates are (sin, cload, vdd).
   The first few points pin down the Vdd and capacitance dependences,
   which is what the four model parameters need. *)
let lead_design =
  [|
    [| 0.50; 0.50; 0.50 |];
    [| 0.20; 0.90; 0.15 |];
    [| 0.90; 0.20; 0.85 |];
    [| 0.15; 0.15; 0.90 |];
    [| 0.85; 0.85; 0.30 |];
    [| 0.50; 0.10; 0.10 |];
    [| 0.10; 0.60; 0.60 |];
    [| 0.90; 0.90; 0.90 |];
  |]

let fitting_points tech ~k =
  if k < 1 then Slc_obs.Slc_error.invalid_input ~site:"Input_space.fitting_points" "k must be >= 1";
  let b = box tech in
  let lead = Array.length lead_design in
  Array.init k (fun i ->
      if i < lead then
        Harness.point_of_vec (Sampling.scale_unit b lead_design.(i))
      else begin
        (* Continue with a Halton tail, skipping the early sequence
           positions that cluster near the lead points. *)
        let h = Sampling.halton b (i - lead + 1 + 16) in
        Harness.point_of_vec h.(i - lead + 16)
      end)

let random_fitting_points_rng rng tech ~k =
  if k < 1 then Slc_obs.Slc_error.invalid_input ~site:"Input_space.random_fitting_points_rng" "k >= 1";
  Array.map Harness.point_of_vec (Sampling.random_box rng (box tech) k)

let random_fitting_points tech ~k ~seed =
  if k < 1 then Slc_obs.Slc_error.invalid_input ~site:"Input_space.random_fitting_points" "k >= 1";
  random_fitting_points_rng (Slc_prob.Rng.create seed) tech ~k

let unit_grid ~levels =
  let unit_box = Array.make 3 (0.05, 0.95) in
  Sampling.full_factorial unit_box ~levels
