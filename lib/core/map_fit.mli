(** Maximum-a-posteriori parameter extraction (paper Eq. 15):

    minimize  (1/2)(P - µ0)ᵀ Σ0⁻¹ (P - µ0)
            + (1/2) Σᵢ βᵢ rᵢ(P)²

    where [rᵢ] is the relative model residual at fitting condition
    [ξᵢ] and [βᵢ = β(ξᵢ)] the historically learned precision.  Solved
    by Levenberg–Marquardt on the stacked residual vector
    [[L0⁻¹ (P - µ0); √βᵢ rᵢ]] with analytic Jacobians ([L0] the
    Cholesky factor of [Σ0]). *)

type result = {
  params : Timing_model.params;
  posterior_cost : float;    (** value of the MAP objective at the optimum *)
  prior_mahalanobis : float; (** (P-µ0)ᵀ Σ0⁻¹ (P-µ0) at the optimum *)
  data_cost : float;         (** Σ βᵢ rᵢ² at the optimum *)
}

val fit :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  prior:Prior.t ->
  tech:Slc_device.Tech.t ->
  Extract_lse.observation array ->
  result
(** MAP fit of the observations under the given prior.  Works with any
    number of observations including zero (then the result is the prior
    mean).  [?workspace] reuses caller-owned LM scratch buffers across
    the per-seed extraction loop; results are bitwise identical with
    and without it. *)

val fit_params :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  prior:Prior.t ->
  tech:Slc_device.Tech.t ->
  Extract_lse.observation array ->
  Timing_model.params
(** [fit] returning only the parameters. *)

(** {2 Sequential-design machinery}

    The adaptive fitting-point design ({!Statistical.design}) selects
    each next simulation by expected information gain.  The two
    functions below expose the pieces: the Gauss–Newton information
    matrix of the MAP objective (the inverse posterior covariance the
    LM fit operates under), and the D-optimal score of a candidate
    condition against it. *)

val information :
  ?prior:Prior.t ->
  tech:Slc_device.Tech.t ->
  at:Timing_model.params ->
  Extract_lse.observation array ->
  Slc_num.Mat.t
(** [information ?prior ~tech ~at obs] is the Gauss–Newton information
    (inverse posterior covariance) of the MAP objective at the
    parameter point [at]:

    A = Σ0⁻¹ + Σᵢ βᵢ g̃ᵢ g̃ᵢᵀ,  with g̃ᵢ = ∇eval(at, ξᵢ) / yᵢ

    — exactly the normal matrix of the stacked residual Jacobian
    {!fit} minimizes over.  Without [?prior] (the LSE regime) the
    prior precision is replaced by a tiny ridge and every βᵢ is 1,
    so the matrix is the pure data information. *)

val predictive_gain :
  ?prior:Prior.t ->
  tech:Slc_device.Tech.t ->
  information:Slc_num.Mat.t ->
  at:Timing_model.params ->
  ieff:float ->
  Slc_cell.Harness.point ->
  float
(** Expected information gain of simulating one more point at the
    candidate condition: β(ξ) · g̃ᵀ A⁻¹ g̃ with g̃ = ∇eval/eval
    (the model's own prediction standing in for the unobserved
    measurement).  Adding the candidate would multiply det A by
    1 + β g̃ᵀA⁻¹g̃ (matrix-determinant lemma), so ranking candidates
    by this score is sequential D-optimal design — equivalently,
    picking the condition where the posterior predictive variance of
    the relative residual is largest. *)
