(** Maximum-a-posteriori parameter extraction (paper Eq. 15):

    minimize  (1/2)(P - µ0)ᵀ Σ0⁻¹ (P - µ0)
            + (1/2) Σᵢ βᵢ rᵢ(P)²

    where [rᵢ] is the relative model residual at fitting condition
    [ξᵢ] and [βᵢ = β(ξᵢ)] the historically learned precision.  Solved
    by Levenberg–Marquardt on the stacked residual vector
    [[L0⁻¹ (P - µ0); √βᵢ rᵢ]] with analytic Jacobians ([L0] the
    Cholesky factor of [Σ0]). *)

type result = {
  params : Timing_model.params;
  posterior_cost : float;    (** value of the MAP objective at the optimum *)
  prior_mahalanobis : float; (** (P-µ0)ᵀ Σ0⁻¹ (P-µ0) at the optimum *)
  data_cost : float;         (** Σ βᵢ rᵢ² at the optimum *)
}

val fit :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  prior:Prior.t ->
  tech:Slc_device.Tech.t ->
  Extract_lse.observation array ->
  result
(** MAP fit of the observations under the given prior.  Works with any
    number of observations including zero (then the result is the prior
    mean).  [?workspace] reuses caller-owned LM scratch buffers across
    the per-seed extraction loop; results are bitwise identical with
    and without it. *)

val fit_params :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  prior:Prior.t ->
  tech:Slc_device.Tech.t ->
  Extract_lse.observation array ->
  Timing_model.params
(** [fit] returning only the parameters. *)
