(** Gaussian belief propagation across technology nodes.

    The paper's prior pools all historical nodes at once.  This module
    implements the sequential alternative the title alludes to: a
    Gaussian belief over the model-parameter mean is passed from the
    oldest node to the newest, updated at each node with that node's
    extracted parameter population, and inflated by a drift term
    between nodes (technology evolution).  The resulting message at the
    end of the chain can replace the pooled prior — see the
    [ablation_chain] bench.

    {!chain} handles the linear topology; {!graph_make}/{!propagate}
    generalize it to arbitrary directed graphs (shared ancestor nodes,
    diamond-shaped derivation histories, even cyclic cross-validation
    structures) under residual-prioritized message scheduling.  A
    chain-shaped graph reproduces the chain fold bit for bit. *)

type message = {
  mu : Slc_num.Vec.t;
  cov : Slc_num.Mat.t;
}

val diffuse : ?scale:float -> int -> message
(** Near-uninformative starting belief of the given dimension (diagonal
    covariance [scale], default 10.0 — very wide in the model's
    natural parameter units). *)

type workspace
(** Preallocated scratch for conjugate updates: the three SPD
    inversions per update run in-place against it (see
    {!Slc_num.Linalg.spd_inverse_into}), so repeated updates — the
    residual-BP inner loop — allocate only their returned posteriors.
    Not domain-safe: one workspace per thread of control. *)

val make_workspace : int -> workspace
(** A workspace for messages of the given dimension (>= 1). *)

val observe : ?ws:workspace -> message -> Slc_num.Vec.t array -> message
(** Conjugate update of the mean-belief with a node's population of
    extracted parameter vectors: the population mean is treated as an
    observation of the underlying mean with covariance [S/n] (sample
    covariance over population size).  With no rows, the belief is
    returned unchanged.

    [?ws] supplies the scratch buffers (it must match the message
    dimension); without it a fresh workspace is allocated for the call.
    Results are bitwise identical either way. *)

val drift : message -> Slc_num.Mat.t -> message
(** Adds process-evolution covariance between adjacent nodes
    (Kalman-style prediction step). *)

val default_drift : int -> Slc_num.Mat.t
(** Diagonal drift sized to typical node-to-node parameter movement. *)

val chain :
  ?drift_cov:Slc_num.Mat.t ->
  (string * Slc_num.Vec.t array) list ->
  message
(** Folds {!observe} and {!drift} over nodes ordered oldest first; each
    element is (node name, extracted parameter vectors).  One workspace
    is reused across the whole fold. *)

val chain_prior : Prior.t -> ordered:string list -> Prior.t
(** Rebuilds a {!Prior.t} whose Gaussian component comes from chain
    propagation over the prior's own provenance (grouped by technology,
    ordered as given — unknown names are skipped, nodes without data are
    skipped); β(ξ) is kept.  Costs no additional simulations. *)

val to_mvn : message -> Slc_prob.Mvn.t

(** {2 Belief graphs}

    Directed Gaussian message passing over an arbitrary topology.  The
    belief at a node is the conjugate update ({!observe}) of the
    precision-weighted combination of its incoming messages with the
    node's own rows; the message along an edge is the source belief
    drifted by the process-evolution covariance.  A node with no
    incoming messages starts from {!diffuse}; a single incoming message
    passes through the combination untouched.

    This is a filtering generalization of {!chain}, not sum-product:
    messages are not excluded from the reverse direction.  On a DAG
    propagation terminates exactly; on a cyclic graph it iterates
    toward a fixed point under the update cap. *)

type graph

val graph_make :
  ?drift_cov:Slc_num.Mat.t ->
  nodes:(string * Slc_num.Vec.t array) list ->
  edges:(int * int) list ->
  unit ->
  graph
(** [graph_make ~nodes ~edges ()] builds a belief graph over the given
    (name, rows) nodes; edges are (source index, destination index)
    pairs into the node list.  Node observation statistics (mean and
    precision) are computed once here and reused across every belief
    recomputation of a propagation run.  Rejects empty node lists,
    out-of-range or self edges, and row/drift dimension mismatches. *)

val graph_of_chain :
  ?drift_cov:Slc_num.Mat.t ->
  (string * Slc_num.Vec.t array) list ->
  graph
(** A linear chain as a graph.  A synthetic ["<origin>"] node with no
    rows feeds the first real node so that the first real belief is
    [observe (drift (diffuse dim) q) rows] — exactly the first step of
    the {!chain} fold.  {!propagate} over the result reproduces
    {!chain} bit for bit at every node. *)

type propagation = {
  beliefs : (string * message) list;
      (** per-node posterior beliefs, in node order *)
  updates : int;  (** messages applied before termination *)
  converged : bool;
      (** every edge residual was at or below [tol] on exit *)
}

val propagate : ?tol:float -> ?max_updates:int -> graph -> propagation
(** Residual-prioritized propagation: each edge tracks the distance
    (L∞ over mean and covariance entries) between its current message
    and the message a recomputation would produce, and the largest
    residual is applied first — the residual-BP schedule, which on
    loopy graphs converges faster than round-robin sweeps.  Unapplied
    edges carry an infinite residual, so every edge is applied at least
    once; ties break deterministically toward the lowest edge index.
    Stops when the largest residual is at or below [?tol] (default
    1e-9) or after [?max_updates] (default 10000) applications. *)
