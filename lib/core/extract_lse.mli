(** Least-squares extraction of the timing-model parameters — the
    "Proposed Model + LSE" method of the paper's comparisons, and the
    fitting engine used on historical libraries during prior
    learning. *)

type observation = {
  point : Slc_cell.Harness.point;
  ieff : float;     (** effective current at this condition, A *)
  value : float;    (** measured delay or slew, s *)
}

val fit :
  ?workspace:Slc_num.Optimize.lm_workspace ->
  ?init:Timing_model.params ->
  ?weights:float array ->
  observation array ->
  Timing_model.params
(** Minimizes the (optionally weighted) sum of squared relative
    residuals with Levenberg–Marquardt and analytic Jacobians.
    [?workspace] reuses caller-owned LM scratch buffers across calls
    (bitwise-identical results).  With
    fewer observations than parameters the problem is rank-deficient;
    the LM damping still returns the minimum-norm-ish local solution
    the paper's LSE baseline would produce (i.e., poor — that is the
    point of the comparison). *)

val avg_abs_rel_error : Timing_model.params -> observation array -> float
(** Mean |relative error| over the observations (the paper's "% error"
    divided by 100). *)

val max_abs_rel_error : Timing_model.params -> observation array -> float
