(** Smooth alpha-power-law MOSFET compact model.

    The drain current combines: a softplus gate-overdrive (giving a
    subthreshold exponential tail and a smooth turn-on), the alpha-power
    saturation current [Idsat = kp * (W/L) * Vov^alpha], a [tanh]
    linear-to-saturation transition and first-order channel-length
    modulation.  The model is symmetric in source/drain and is C^1 in all
    terminal voltages — a requirement for the Newton transient solver.

    This stands in for the proprietary BSIM kits of the paper: it exposes
    the same knobs the paper's timing model abstracts ([Ieff], [Vt],
    drive strength, parasitics) while remaining cheap and robust. *)

type polarity = Nmos | Pmos

type params = {
  polarity : polarity;
  w : float;  (** channel width, m *)
  l : float;  (** channel length, m *)
  vt : float; (** threshold-voltage magnitude, V (>= 0 for both types) *)
  kp : float; (** drive factor, A/V^alpha (multiplied by W/L) *)
  alpha : float;      (** velocity-saturation exponent, typically 1.2–2 *)
  theta : float;      (** softplus smoothing width, V (~ n kT/q) *)
  vsat_frac : float;  (** Vdsat = vsat_frac * Vov + vdsat_floor *)
  lambda : float;     (** channel-length modulation, 1/V *)
  cg : float;         (** gate capacitance per width, F/m *)
  cj : float;         (** drain/source junction capacitance per width, F/m *)
}

val scale_width : params -> float -> params
(** [scale_width p f] multiplies the width by [f] (> 0). *)

val at_temperature : params -> celsius:float -> params
(** Standard first-order temperature scaling from the 25 C reference:
    mobility (drive factor) degrades as [(T/T0)^-1.3] in kelvin and the
    threshold drops by 1 mV/K; the subthreshold smoothing width tracks
    [kT/q].  Hot silicon is slower at nominal supply (mobility wins),
    which is the behaviour timing signoff assumes. *)

type eval = {
  id : float;   (** current entering the drain terminal, A *)
  d_vg : float; (** partial derivatives of [id] w.r.t. terminal voltages *)
  d_vd : float;
  d_vs : float;
}

val channel_current : params -> vgs:float -> vds:float -> float
(** Intrinsic channel current for an NMOS-convention device with
    [vds >= 0]; this is the quantity used by {!ieff}. *)

val eval : params -> vg:float -> vd:float -> vs:float -> eval
(** Terminal current and derivatives at the given absolute node voltages
    (handles source/drain swap and PMOS mirroring internally). *)

type eval_buf = {
  mutable b_id : float;
  mutable b_vg : float;
  mutable b_vd : float;
  mutable b_vs : float;
}
(** Mutable destination for {!eval_into}.  All-float record, so it is
    stored flat and repeated evaluations into it never allocate. *)

val make_eval_buf : unit -> eval_buf

val eval_into : params -> vg:float -> vd:float -> vs:float -> eval_buf -> unit
(** Same results as {!eval}, written into [eval_buf] instead of a fresh
    record.  This is the allocation-free entry point used by the
    transient simulator's Newton loop; the two paths agree bit-for-bit. *)

val idsat : params -> vdd:float -> float
(** On-current at [Vgs = Vds = vdd]. *)

val ieff : params -> vdd:float -> float
(** Effective switching current, paper Eq. 4:
    [(Id(Vdd, Vdd/2) + Id(Vdd/2, Vdd)) / 2]. *)

val cgate : params -> float
(** Total gate capacitance [cg * w], F. *)

val cjunction : params -> float
(** Drain junction capacitance [cj * w], F. *)

(** {2 Structure-of-arrays parameter slabs}

    The batch transient engine keeps per-(device, lane) parameters in a
    flat [Bigarray] slab: one contiguous {!slab_fields}-float block per
    device instance, filled once per batch from the lane's {!params}
    and then streamed by the lockstep Newton loop.  Derived constants
    ([kp * w / l], [alpha - 1]) are precomputed at fill time with the
    same floating-point association the record path uses, so
    {!eval_slab_into} agrees with {!eval_into} bit for bit. *)

type slab = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val slab_fields : int
(** Floats per (device, lane) block. *)

val make_slab : int -> slab
(** [make_slab n] allocates an [n]-float slab (at least one float). *)

val fill_slab : params -> slab -> off:int -> unit
(** Write one device's block at [off] (callers pass
    [block_index * slab_fields]). *)

val eval_slab_into :
  slab -> off:int -> vg:float -> vd:float -> vs:float -> eval_buf -> unit
(** As {!eval_into}, reading the device from the slab block at [off].
    Bitwise-identical results to the record path. *)
