type polarity = Nmos | Pmos

type params = {
  polarity : polarity;
  w : float;
  l : float;
  vt : float;
  kp : float;
  alpha : float;
  theta : float;
  vsat_frac : float;
  lambda : float;
  cg : float;
  cj : float;
}

let scale_width p f =
  if f <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Mosfet.scale_width" "factor must be > 0";
  { p with w = p.w *. f }

let t_ref_kelvin = 298.15

let at_temperature p ~celsius =
  let t = celsius +. 273.15 in
  if t <= 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Mosfet.at_temperature" "below absolute zero";
  let ratio = t /. t_ref_kelvin in
  {
    p with
    kp = p.kp *. (ratio ** -1.3);
    vt = p.vt -. (1e-3 *. (t -. t_ref_kelvin));
    theta = p.theta *. ratio;
  }

type eval = { id : float; d_vg : float; d_vd : float; d_vs : float }

let vdsat_floor = 0.02

(* Softplus overdrive and its derivative (a numerically safe sigmoid). *)
let overdrive p vgs =
  let x = (vgs -. p.vt) /. p.theta in
  if x > 35.0 then (vgs -. p.vt, 1.0)
  else if x < -35.0 then (p.theta *. exp x, exp x)
  else begin
    let e = exp x in
    (p.theta *. log1p e, e /. (1.0 +. e))
  end

(* Intrinsic NMOS-convention current for vds >= 0, with partials w.r.t.
   vgs and vds.  [vov ** alpha] is derived from the [alpha - 1] power
   (needed for the derivative anyway) with one multiply, halving the
   number of [pow] calls on the simulator hot path. *)
let intrinsic p vgs vds =
  let vov, dvov = overdrive p vgs in
  let wl = p.w /. p.l in
  let vp = vov ** (p.alpha -. 1.0) in
  let idsat = p.kp *. wl *. (vp *. vov) in
  let d_idsat = p.kp *. wl *. p.alpha *. vp *. dvov in
  let vdsat = (p.vsat_frac *. vov) +. vdsat_floor in
  let d_vdsat = p.vsat_frac *. dvov in
  let u = vds /. vdsat in
  let t = tanh u in
  let sech2 = 1.0 -. (t *. t) in
  let clm = 1.0 +. (p.lambda *. vds) in
  let id = idsat *. t *. clm in
  let gm =
    (d_idsat *. t *. clm)
    +. (idsat *. sech2 *. (-.u /. vdsat) *. d_vdsat *. clm)
  in
  let gds = (idsat *. sech2 /. vdsat *. clm) +. (idsat *. t *. p.lambda) in
  (id, gm, gds)

let channel_current p ~vgs ~vds =
  if vds < 0.0 then Slc_obs.Slc_error.invalid_input ~site:"Mosfet.channel_current" "vds must be >= 0";
  let id, _, _ = intrinsic p vgs vds in
  id

(* NMOS-convention terminal evaluation with source/drain symmetry. *)
let eval_nmos p ~vg ~vd ~vs =
  if vd >= vs then begin
    let id, gm, gds = intrinsic p (vg -. vs) (vd -. vs) in
    { id; d_vg = gm; d_vd = gds; d_vs = -.(gm +. gds) }
  end
  else begin
    (* Terminals swap roles: vs acts as drain.  The current into the
       labelled drain is the negative of the swapped-channel current. *)
    let id, gm, gds = intrinsic p (vg -. vd) (vs -. vd) in
    { id = -.id; d_vg = -.gm; d_vd = gm +. gds; d_vs = -.gds }
  end

let eval p ~vg ~vd ~vs =
  match p.polarity with
  | Nmos -> eval_nmos p ~vg ~vd ~vs
  | Pmos ->
    (* Mirror all voltages; id_p(v) = -id_n(-v), so the partial
       derivatives carry over with their sign preserved. *)
    let e = eval_nmos p ~vg:(-.vg) ~vd:(-.vd) ~vs:(-.vs) in
    { id = -.e.id; d_vg = e.d_vg; d_vd = e.d_vd; d_vs = e.d_vs }

(* Allocation-free evaluation for the simulator inner loop.  All fields
   are floats, so the record is a flat float block and the stores below
   never allocate.  The arithmetic is kept in exactly the same order as
   [overdrive]/[intrinsic]/[eval_nmos] above so both paths agree
   bit-for-bit. *)
type eval_buf = {
  mutable b_id : float;
  mutable b_vg : float;
  mutable b_vd : float;
  mutable b_vs : float;
}

let make_eval_buf () = { b_id = 0.0; b_vg = 0.0; b_vd = 0.0; b_vs = 0.0 }

(* Writes (id, gm, gds) into (b_id, b_vg, b_vd); b_vs is untouched.  The
   overdrive branch stashes its pair in the buffer instead of returning
   a tuple so the whole call chain stays allocation-free without
   depending on the inliner. *)
let[@inline] [@slc.hot] intrinsic_into p vgs vds buf =
  let x = (vgs -. p.vt) /. p.theta in
  (if x > 35.0 then begin
     buf.b_vg <- vgs -. p.vt;
     buf.b_vd <- 1.0
   end
   else if x < -35.0 then begin
     let e = exp x in
     buf.b_vg <- p.theta *. e;
     buf.b_vd <- e
   end
   else begin
     let e = exp x in
     buf.b_vg <- p.theta *. log1p e;
     buf.b_vd <- e /. (1.0 +. e)
   end);
  let vov = buf.b_vg and dvov = buf.b_vd in
  let wl = p.w /. p.l in
  let vp = vov ** (p.alpha -. 1.0) in
  let idsat = p.kp *. wl *. (vp *. vov) in
  let d_idsat = p.kp *. wl *. p.alpha *. vp *. dvov in
  let vdsat = (p.vsat_frac *. vov) +. vdsat_floor in
  let d_vdsat = p.vsat_frac *. dvov in
  let u = vds /. vdsat in
  let t = tanh u in
  let sech2 = 1.0 -. (t *. t) in
  let clm = 1.0 +. (p.lambda *. vds) in
  let id = idsat *. t *. clm in
  let gm =
    (d_idsat *. t *. clm)
    +. (idsat *. sech2 *. (-.u /. vdsat) *. d_vdsat *. clm)
  in
  let gds = (idsat *. sech2 /. vdsat *. clm) +. (idsat *. t *. p.lambda) in
  buf.b_id <- id;
  buf.b_vg <- gm;
  buf.b_vd <- gds

let[@inline] [@slc.hot] eval_nmos_into p ~vg ~vd ~vs buf =
  if vd >= vs then begin
    intrinsic_into p (vg -. vs) (vd -. vs) buf;
    buf.b_vs <- -.(buf.b_vg +. buf.b_vd)
  end
  else begin
    intrinsic_into p (vg -. vd) (vs -. vd) buf;
    let gm = buf.b_vg and gds = buf.b_vd in
    buf.b_id <- -.buf.b_id;
    buf.b_vg <- -.gm;
    buf.b_vd <- gm +. gds;
    buf.b_vs <- -.gds
  end

let[@inline] [@slc.hot] eval_into p ~vg ~vd ~vs buf =
  match p.polarity with
  | Nmos -> eval_nmos_into p ~vg ~vd ~vs buf
  | Pmos ->
    eval_nmos_into p ~vg:(-.vg) ~vd:(-.vd) ~vs:(-.vs) buf;
    buf.b_id <- -.buf.b_id

(* ------------------------------------------------------------------ *)
(* Structure-of-arrays parameter slabs for the batch transient engine.

   A slab packs, per (device, lane), the eight parameter values the
   evaluation needs as one contiguous block of a flat [Bigarray], so a
   batched Newton loop streaming over many lanes touches one cache
   line per device evaluation instead of a boxed record per lane.
   Derived constants are precomputed at fill time with the SAME
   floating-point association the record path uses —
   [kp *. wl *. (vp *. vov)] parses as [(kp *. wl) *. (vp *. vov)], so
   storing [kp *. wl] is a bitwise-neutral substitution — keeping
   [eval_slab_into] bit-for-bit equal to [eval_into]. *)

type slab = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Field order within a block: sign, vt, theta, kp*w/l, alpha,
   alpha-1, vsat_frac, lambda. *)
let slab_fields = 8

let make_slab n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max 1 n)

let fill_slab p (slab : slab) ~off =
  let set i x = Bigarray.Array1.set slab (off + i) x in
  set 0 (match p.polarity with Nmos -> 1.0 | Pmos -> -1.0);
  set 1 p.vt;
  set 2 p.theta;
  set 3 (p.kp *. (p.w /. p.l));
  set 4 p.alpha;
  set 5 (p.alpha -. 1.0);
  set 6 p.vsat_frac;
  set 7 p.lambda

(* [intrinsic_into] with the slab's precomputed constants.  Arithmetic
   order matches the record path exactly; [vov ** 0.5] is dispatched to
   [sqrt], which produces the identical correctly-rounded result. *)
let[@inline] [@slc.hot] intrinsic_slab ~vt ~theta ~kpwl ~alpha ~alpha_m1
    ~vsat_frac ~lambda vgs vds buf =
  let x = (vgs -. vt) /. theta in
  (if x > 35.0 then begin
     buf.b_vg <- vgs -. vt;
     buf.b_vd <- 1.0
   end
   else if x < -35.0 then begin
     let e = exp x in
     buf.b_vg <- theta *. e;
     buf.b_vd <- e
   end
   else begin
     let e = exp x in
     buf.b_vg <- theta *. log1p e;
     buf.b_vd <- e /. (1.0 +. e)
   end);
  let vov = buf.b_vg and dvov = buf.b_vd in
  let vp = if alpha_m1 = 0.5 then sqrt vov else vov ** alpha_m1 in
  let idsat = kpwl *. (vp *. vov) in
  let d_idsat = kpwl *. alpha *. vp *. dvov in
  let vdsat = (vsat_frac *. vov) +. vdsat_floor in
  let d_vdsat = vsat_frac *. dvov in
  let u = vds /. vdsat in
  let t = tanh u in
  let sech2 = 1.0 -. (t *. t) in
  let clm = 1.0 +. (lambda *. vds) in
  let id = idsat *. t *. clm in
  let gm =
    (d_idsat *. t *. clm)
    +. (idsat *. sech2 *. (-.u /. vdsat) *. d_vdsat *. clm)
  in
  let gds = (idsat *. sech2 /. vdsat *. clm) +. (idsat *. t *. lambda) in
  buf.b_id <- id;
  buf.b_vg <- gm;
  buf.b_vd <- gds

(* Terminal evaluation from a slab block.  Multiplying the voltages by
   the stored sign (+1/-1) is an exact IEEE negation (or identity), so
   the branch-free polarity mirror is bitwise equal to [eval_into]'s
   explicit one. *)
let[@slc.hot] eval_slab_into (slab : slab) ~off ~vg ~vd ~vs buf =
  let sign = Bigarray.Array1.unsafe_get slab off in
  let vt = Bigarray.Array1.unsafe_get slab (off + 1) in
  let theta = Bigarray.Array1.unsafe_get slab (off + 2) in
  let kpwl = Bigarray.Array1.unsafe_get slab (off + 3) in
  let alpha = Bigarray.Array1.unsafe_get slab (off + 4) in
  let alpha_m1 = Bigarray.Array1.unsafe_get slab (off + 5) in
  let vsat_frac = Bigarray.Array1.unsafe_get slab (off + 6) in
  let lambda = Bigarray.Array1.unsafe_get slab (off + 7) in
  let vg = sign *. vg and vd = sign *. vd and vs = sign *. vs in
  if vd >= vs then begin
    intrinsic_slab ~vt ~theta ~kpwl ~alpha ~alpha_m1 ~vsat_frac ~lambda
      (vg -. vs) (vd -. vs) buf;
    buf.b_vs <- -.(buf.b_vg +. buf.b_vd);
    buf.b_id <- sign *. buf.b_id
  end
  else begin
    intrinsic_slab ~vt ~theta ~kpwl ~alpha ~alpha_m1 ~vsat_frac ~lambda
      (vg -. vd) (vs -. vd) buf;
    let gm = buf.b_vg and gds = buf.b_vd in
    buf.b_id <- sign *. -.buf.b_id;
    buf.b_vg <- -.gm;
    buf.b_vd <- gm +. gds;
    buf.b_vs <- -.gds
  end

let idsat p ~vdd =
  let id, _, _ = intrinsic p vdd vdd in
  id

let ieff p ~vdd =
  let ih, _, _ = intrinsic p vdd (vdd /. 2.0) in
  let il, _, _ = intrinsic p (vdd /. 2.0) vdd in
  0.5 *. (ih +. il)

let cgate p = p.cg *. p.w

let cjunction p = p.cj *. p.w
