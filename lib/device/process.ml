module Rng = Slc_prob.Rng
module Dist = Slc_prob.Dist

type seed = {
  index : int;
  dvt_n : float;
  dvt_p : float;
  dkp_rel : float;
  dl_rel : float;
  dcpar_rel : float;
  local_seed : int;
}

let nominal =
  {
    index = -1;
    dvt_n = 0.0;
    dvt_p = 0.0;
    dkp_rel = 0.0;
    dl_rel = 0.0;
    dcpar_rel = 0.0;
    local_seed = 0;
  }

type corner = Ss | Tt | Ff | Sf | Fs

let corner (tech : Tech.t) which =
  (* +1 = slow (higher Vt), -1 = fast, per device polarity; the shared
     mobility shift follows the average of the two polarities. *)
  let n_sign, p_sign =
    match which with
    | Ss -> (1.0, 1.0)
    | Tt -> (0.0, 0.0)
    | Ff -> (-1.0, -1.0)
    | Sf -> (1.0, -1.0)
    | Fs -> (-1.0, 1.0)
  in
  let vt3 = 3.0 *. tech.Tech.sigma_vt_global in
  let kp2 = 2.0 *. tech.Tech.sigma_kp_rel in
  {
    index = -1;
    dvt_n = n_sign *. vt3;
    dvt_p = p_sign *. vt3;
    dkp_rel = -.kp2 *. (n_sign +. p_sign) /. 2.0;
    dl_rel = 0.0;
    dcpar_rel = 0.0;
    local_seed = 0;
  }

let sample rng (tech : Tech.t) index =
  {
    index;
    dvt_n = Dist.gaussian rng ~mu:0.0 ~sigma:tech.sigma_vt_global;
    dvt_p = Dist.gaussian rng ~mu:0.0 ~sigma:tech.sigma_vt_global;
    dkp_rel =
      Dist.truncated_gaussian rng ~mu:0.0 ~sigma:tech.sigma_kp_rel ~lo:(-0.4)
        ~hi:0.4;
    dl_rel =
      Dist.truncated_gaussian rng ~mu:0.0 ~sigma:tech.sigma_l_rel ~lo:(-0.3)
        ~hi:0.3;
    dcpar_rel =
      Dist.truncated_gaussian rng ~mu:0.0 ~sigma:tech.sigma_cpar_rel
        ~lo:(-0.4) ~hi:0.4;
    local_seed = Int64.to_int (Rng.uint64 rng) land 0x3FFFFFFF;
  }

let sample_batch rng tech n = Array.init n (fun i -> sample rng tech i)

let sample_batch_lhs rng (tech : Tech.t) n =
  if n < 1 then Slc_obs.Slc_error.invalid_input ~site:"Process.sample_batch_lhs" "n must be >= 1";
  (* One stratified uniform per dimension, pushed through the Gaussian
     (or truncated-Gaussian-approximating clamp) quantile. *)
  let unit_box = Array.make 5 (0.0, 1.0) in
  let pts = Slc_prob.Sampling.latin_hypercube rng unit_box n in
  let clamp_q lo hi u = Float.max lo (Float.min hi u) in
  Array.init n (fun i ->
      let u = pts.(i) in
      let q sigma j =
        Slc_prob.Dist.gaussian_quantile ~mu:0.0 ~sigma
          (clamp_q 1e-6 (1.0 -. 1e-6) u.(j))
      in
      let trunc sigma bound j = Float.max (-.bound) (Float.min bound (q sigma j)) in
      {
        index = i;
        dvt_n = q tech.Tech.sigma_vt_global 0;
        dvt_p = q tech.Tech.sigma_vt_global 1;
        dkp_rel = trunc tech.Tech.sigma_kp_rel 0.4 2;
        dl_rel = trunc tech.Tech.sigma_l_rel 0.3 3;
        dcpar_rel = trunc tech.Tech.sigma_cpar_rel 0.4 4;
        local_seed = Int64.to_int (Slc_prob.Rng.uint64 rng) land 0x3FFFFFFF;
      })

let local_dvt seed (tech : Tech.t) ~device_index (p : Mosfet.params) =
  if seed.local_seed = 0 && seed.index = -1 then 0.0
  else begin
    let stream = Rng.create ((seed.local_seed * 65_537) + device_index) in
    let sigma = tech.avt /. sqrt (p.w *. p.l) in
    Dist.gaussian stream ~mu:0.0 ~sigma
  end

let apply seed tech ~device_index (p : Mosfet.params) =
  let dvt_global =
    match p.polarity with Mosfet.Nmos -> seed.dvt_n | Mosfet.Pmos -> seed.dvt_p
  in
  let dvt = dvt_global +. local_dvt seed tech ~device_index p in
  {
    p with
    vt = p.vt +. dvt;
    kp = p.kp *. (1.0 +. seed.dkp_rel);
    l = p.l *. (1.0 +. seed.dl_rel);
  }

let cpar_scale seed = 1.0 +. seed.dcpar_rel
